package tables

import (
	"fmt"
	"strings"
	"time"

	"parserhawk/internal/core"
	"parserhawk/internal/dpgen"
	"parserhawk/internal/hw"
	"parserhawk/internal/pir"
)

// Figure4Result reproduces the motivating example of §3.2.1 / Figure 4:
// the Figure 3 parser program compiled for device B (4-bit transition
// keys) and device A (2-bit keys). The V1 strategy (rule-based merging
// plus fixed-order key splitting, here DPParserGen) spends more TCAM
// entries than the synthesized V2 strategy (ParserHawk); the paper's
// instance of the gap is 10 vs 6 entries on device A.
type Figure4Result struct {
	DeviceBParserHawk  int
	DeviceBDPParserGen int
	DeviceAParserHawk  int
	DeviceADPParserGen int
}

// fig3Program is the parser specification of Figure 3: a 4-bit key with
// {15, 11, 7, 3} -> N1, {14} -> N2, {2} -> N3, default accept.
func fig3Program() *pir.Spec {
	return pir.MustNew("figure3",
		[]pir.Field{
			{Name: "tranKey", Width: 4},
			{Name: "n1", Width: 2}, {Name: "n2", Width: 2}, {Name: "n3", Width: 2},
		},
		[]pir.State{
			{
				Name:     "Start",
				Extracts: []pir.Extract{{Field: "tranKey"}},
				Key:      []pir.KeyPart{pir.WholeField("tranKey", 4)},
				Rules: []pir.Rule{
					pir.ExactRule(15, 4, pir.To(1)), pir.ExactRule(11, 4, pir.To(1)),
					pir.ExactRule(7, 4, pir.To(1)), pir.ExactRule(3, 4, pir.To(1)),
					pir.ExactRule(14, 4, pir.To(2)), pir.ExactRule(2, 4, pir.To(3)),
				},
				Default: pir.AcceptTarget,
			},
			{Name: "N1", Extracts: []pir.Extract{{Field: "n1"}}, Default: pir.AcceptTarget},
			{Name: "N2", Extracts: []pir.Extract{{Field: "n2"}}, Default: pir.AcceptTarget},
			{Name: "N3", Extracts: []pir.Extract{{Field: "n3"}}, Default: pir.AcceptTarget},
		})
}

// Figure4 compiles the Figure 3 program on both devices with both
// compilers.
func Figure4(timeout time.Duration) (Figure4Result, error) {
	if timeout == 0 {
		timeout = 2 * time.Minute
	}
	spec := fig3Program()
	deviceB := hw.Parameterized(4, 8, 16) // 4-bit keys
	deviceA := hw.Parameterized(2, 8, 16) // 2-bit keys

	var out Figure4Result
	opts := core.DefaultOptions()
	opts.Timeout = timeout
	resB, err := core.Compile(spec, deviceB, opts)
	if err != nil {
		return out, fmt.Errorf("figure4 device B: %w", err)
	}
	out.DeviceBParserHawk = resB.Resources.Entries
	resA, err := core.Compile(spec, deviceA, opts)
	if err != nil {
		return out, fmt.Errorf("figure4 device A: %w", err)
	}
	out.DeviceAParserHawk = resA.Resources.Entries

	dpB, err := dpgen.Compile(spec, deviceB)
	if err != nil {
		return out, fmt.Errorf("figure4 DP device B: %w", err)
	}
	out.DeviceBDPParserGen = dpB.Entries
	dpA, err := dpgen.Compile(spec, deviceA)
	if err != nil {
		return out, fmt.Errorf("figure4 DP device A: %w", err)
	}
	out.DeviceADPParserGen = dpA.Entries
	return out, nil
}

// FormatFigure4 renders the Figure 4 comparison.
func FormatFigure4(r Figure4Result) string {
	var sb strings.Builder
	sb.WriteString("Figure 4 — Figure 3 program, synthesized (V2) vs rule-based (V1):\n")
	fmt.Fprintf(&sb, "  device B (4-bit keys): ParserHawk %d entries, DPParserGen %d entries\n",
		r.DeviceBParserHawk, r.DeviceBDPParserGen)
	fmt.Fprintf(&sb, "  device A (2-bit keys): ParserHawk %d entries, DPParserGen %d entries (paper: 6 vs 10)\n",
		r.DeviceAParserHawk, r.DeviceADPParserGen)
	return sb.String()
}

// Figure5Result reproduces §3.2.2 / Figure 5: two written forms of the
// same program whose rule-merging results use the same number of
// mask+value pairs, yet consume different TCAM resources under a
// rule-based compiler — while the synthesis-based compiler lands on the
// same (minimal) footprint for both.
type Figure5Result struct {
	Sol1DP, Sol2DP int // DPParserGen entries per written form
	Sol1PH, Sol2PH int // ParserHawk entries per written form
}

// figure5Programs returns two semantically identical programs written
// with different key structures: Sol1 keys on the two bits adjacent to
// the cursor, Sol2 on two bits straddling a gap. On a cursor-anchored
// device, Sol2's window is one bit wider and no longer fits the key
// limit.
func figure5Programs() (*pir.Spec, *pir.Spec) {
	fields := []pir.Field{
		{Name: "k", Width: 3},
		{Name: "a", Width: 2},
	}
	mk := func(name string, key []pir.KeyPart, rules []pir.Rule) *pir.Spec {
		return pir.MustNew(name, fields,
			[]pir.State{
				{
					Name:     "S",
					Extracts: []pir.Extract{{Field: "k"}},
					Key:      key,
					Rules:    rules,
					Default:  pir.AcceptTarget,
				},
				{Name: "A", Extracts: []pir.Extract{{Field: "a"}}, Default: pir.AcceptTarget},
			})
	}
	// Both transition to A exactly when k's MSB is 0.
	sol1 := mk("sol1",
		[]pir.KeyPart{pir.FieldSlice("k", 0, 2)}, // bits 0-1: contiguous
		[]pir.Rule{
			pir.ExactRule(0b00, 2, pir.To(1)),
			pir.ExactRule(0b01, 2, pir.To(1)),
		})
	sol2 := mk("sol2",
		[]pir.KeyPart{pir.FieldSlice("k", 0, 1), pir.FieldSlice("k", 2, 3)}, // bits 0 and 2: gap
		[]pir.Rule{
			pir.ExactRule(0b00, 2, pir.To(1)),
			pir.ExactRule(0b01, 2, pir.To(1)),
		})
	return sol1, sol2
}

// Figure5 compiles both written forms with both compilers on a 2-bit-key
// device whose matching is anchored at the extraction cursor.
func Figure5(timeout time.Duration) (Figure5Result, error) {
	if timeout == 0 {
		timeout = 2 * time.Minute
	}
	sol1, sol2 := figure5Programs()
	device := hw.Parameterized(2, 4, 16)

	var out Figure5Result
	opts := core.DefaultOptions()
	opts.Timeout = timeout
	r1, err := core.Compile(sol1, device, opts)
	if err != nil {
		return out, fmt.Errorf("figure5 sol1: %w", err)
	}
	r2, err := core.Compile(sol2, device, opts)
	if err != nil {
		return out, fmt.Errorf("figure5 sol2: %w", err)
	}
	out.Sol1PH, out.Sol2PH = r1.Resources.Entries, r2.Resources.Entries

	d1, err := dpgen.Compile(sol1, device)
	if err != nil {
		return out, fmt.Errorf("figure5 DP sol1: %w", err)
	}
	d2, err := dpgen.Compile(sol2, device)
	if err != nil {
		return out, fmt.Errorf("figure5 DP sol2: %w", err)
	}
	out.Sol1DP, out.Sol2DP = d1.Entries, d2.Entries
	return out, nil
}

// FormatFigure5 renders the Figure 5 comparison.
func FormatFigure5(r Figure5Result) string {
	var sb strings.Builder
	sb.WriteString("Figure 5 — same merge count, different written forms, cursor-anchored device:\n")
	fmt.Fprintf(&sb, "  rule-based:  Sol1 %d entries, Sol2 %d entries (style-dependent)\n", r.Sol1DP, r.Sol2DP)
	fmt.Fprintf(&sb, "  ParserHawk:  Sol1 %d entries, Sol2 %d entries (style-independent)\n", r.Sol1PH, r.Sol2PH)
	return sb.String()
}
