package tables

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"parserhawk/internal/cert"
	"parserhawk/internal/core"
	"parserhawk/internal/hw"
	"parserhawk/internal/pir"
	"parserhawk/internal/tcam"
)

// TargetRun is one target's outcome of a multi-target compile: the verdict
// and resource footprint in that device's own objective units, plus the
// independent certificate check's result.
type TargetRun struct {
	Target    string
	Arch      hw.Arch
	Objective hw.Objective
	Verdict   string // "ok", "no_solution", "lint_error", or "error"
	Entries   int
	Stages    int
	Seconds   float64
	Certified bool
	CertErr   string // why certification failed, when it did
	Err       string // compile failure detail
}

// CompileTargets fans one spec across several device profiles
// concurrently. The portfolio worker budget (opts.Workers, zero meaning
// GOMAXPROCS) is split across the targets, so a multi-target compile costs
// the same worker pool as a single-target one; each per-target compile
// keeps the portfolio determinism contract, so the fan-out changes wall
// time only. Every successful compile is certified with the independent
// witness checker (CheckCertificate), whatever opts said: a comparison
// table mixing checked and unchecked rows would not be comparing like with
// like.
func CompileTargets(spec *pir.Spec, profiles []hw.Profile, opts core.Options) []TargetRun {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	perTarget := workers / len(profiles)
	if perTarget < 1 {
		perTarget = 1
	}
	runs := make([]TargetRun, len(profiles))
	var wg sync.WaitGroup
	for i, p := range profiles {
		wg.Add(1)
		go func(i int, p hw.Profile) {
			defer wg.Done()
			o := opts
			o.Workers = perTarget
			o.EmitCertificate = true
			runs[i] = compileTarget(spec, p, o)
		}(i, p)
	}
	wg.Wait()
	return runs
}

func compileTarget(spec *pir.Spec, profile hw.Profile, opts core.Options) TargetRun {
	run := TargetRun{
		Target:    profile.Name,
		Arch:      profile.Arch,
		Objective: profile.Objective.For(profile.Arch),
	}
	t0 := time.Now()
	res, err := core.Compile(spec, profile, opts)
	run.Seconds = time.Since(t0).Seconds()
	if err != nil {
		var lintErr *core.LintError
		switch {
		case errors.Is(err, core.ErrNoSolution):
			run.Verdict = "no_solution"
		case errors.As(err, &lintErr):
			run.Verdict = "lint_error"
		default:
			run.Verdict = "error"
		}
		run.Err = err.Error()
		return run
	}
	run.Verdict = "ok"
	run.Entries = res.Resources.Entries
	run.Stages = res.Resources.Stages
	switch {
	case res.Certificate == nil:
		run.CertErr = "compile produced no certificate"
	default:
		if cerr := CheckCertificate(spec, profile, res.Certificate); cerr != nil {
			run.CertErr = cerr.Error()
		} else {
			run.Certified = true
		}
	}
	return run
}

// CheckCertificate is the full independent validation of one certificate
// against the source spec and the device profile it claims to target: the
// spec name and hash, an arch cross-check, the effective-spec
// recomputation, the bisimulation witness and optional DRAT proof
// (SelfCheck), and a device re-validation of the deployed program under
// the profile's own semantics — for streaming targets that is the
// window/depth rules (next-cycle alignment, per-cycle entry budget), which
// the witness alone does not police. hawkcheck and the multi-target
// harness share this path, so "certified" means the same thing in both.
func CheckCertificate(spec *pir.Spec, profile hw.Profile, c *cert.Certificate) error {
	if c.Spec != spec.Name {
		return fmt.Errorf("certificate is for spec %q, input is %q", c.Spec, spec.Name)
	}
	if got := core.SpecSHA(spec); got != c.SpecSHA {
		return fmt.Errorf("spec hash mismatch: certificate %s, input hashes to %s", c.SpecSHA, got)
	}
	// Arch cross-check: a certificate compiled for one architecture must
	// not validate against a profile of another, even if a name collision
	// (or a tampered file) says otherwise. Pre-arch certificates carry no
	// arch; the device re-validation below still applies.
	if c.Arch != "" && c.Arch != profile.Arch.String() {
		return fmt.Errorf("certificate arch %q does not match profile %s arch %q",
			c.Arch, profile.Name, profile.Arch)
	}
	// Recompute the effective spec from the input alone and demand the
	// certificate's copy is identical — a witness for some other spec
	// (stale cache, tampered file) fails here before any traversal.
	opts := core.DefaultOptions()
	opts.MaxIterations = c.Unroll
	eff, err := core.EffectiveSpec(spec, profile, opts)
	if err != nil {
		return fmt.Errorf("recomputing effective spec: %w", err)
	}
	want, err := cert.EncodeSpecJSON(eff)
	if err != nil {
		return err
	}
	certEff, err := cert.DecodeSpecJSON(c.Effective)
	if err != nil {
		return fmt.Errorf("certificate effective spec: %w", err)
	}
	got, err := cert.EncodeSpecJSON(certEff)
	if err != nil {
		return err
	}
	if string(got) != string(want) {
		return errors.New("certificate's effective spec differs from the one recomputed from the input")
	}
	// Device re-validation: the witness proves behavioral equivalence; the
	// profile proves deployability. Both must hold for "certified".
	prog, err := tcam.DecodeJSON(c.Program)
	if err != nil {
		return fmt.Errorf("certificate program: %w", err)
	}
	prog.Spec = eff
	if err := profile.Validate(prog); err != nil {
		return fmt.Errorf("program violates device limits: %w", err)
	}
	return c.SelfCheck()
}

// FormatTargets renders a multi-target comparison table: one row per
// target, each reporting cost in its own objective's units. Cross-target
// dominance is intentionally absent — entries and cycles are not
// comparable, which is exactly why dominance stays per-objective inside
// the compiler.
func FormatTargets(runs []TargetRun) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-14s %-22s %-12s %-12s %8s %8s %8s  %s\n",
		"target", "arch", "objective", "verdict", "entries", "stages", "time(s)", "certificate")
	sb.WriteString(strings.Repeat("-", 104) + "\n")
	for _, r := range runs {
		entries, stages := "-", "-"
		if r.Verdict == "ok" {
			entries = fmt.Sprintf("%d", r.Entries)
			stages = fmt.Sprintf("%d", r.Stages)
		}
		certCol := "-"
		if r.Verdict == "ok" {
			certCol = "ok"
			if !r.Certified {
				certCol = "FAILED: " + r.CertErr
			}
		}
		verdict := r.Verdict
		if r.Err != "" && r.Verdict == "error" {
			verdict = "error"
		}
		fmt.Fprintf(&sb, "%-14s %-22s %-12s %-12s %8s %8s %8.2f  %s\n",
			r.Target, r.Arch, r.Objective, verdict, entries, stages, r.Seconds, certCol)
		if r.Err != "" {
			fmt.Fprintf(&sb, "%-14s   %s\n", "", r.Err)
		}
	}
	return sb.String()
}
