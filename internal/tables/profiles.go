package tables

import "parserhawk/internal/hw"

// The scaled evaluation profiles join the hw registry at init, so the
// compile service's /v1/profiles endpoint, the CLI -target/-targets flags,
// and the bench harness all see one list — a precondition of the
// service-vs-CLI identity gate. The full devices register themselves in
// internal/hw.
func init() {
	hw.Register(TofinoScaled())
	hw.Register(IPUScaled())
	hw.Register(FPGAScaled())
}

// Profiles returns every named device profile the repository knows how to
// compile for: the full devices (internal/hw) and the scaled evaluation
// equivalents this package defines, in registration order.
func Profiles() []hw.Profile {
	return hw.All()
}

// ProfileByName resolves a device profile by its Name field, covering
// both the full devices and the scaled evaluation profiles.
func ProfileByName(name string) (hw.Profile, bool) {
	return hw.ByName(name)
}
