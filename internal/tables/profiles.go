package tables

import "parserhawk/internal/hw"

// Profiles returns every named device profile the repository knows how to
// compile for: the full devices (internal/hw) and the scaled evaluation
// equivalents this package defines. The compile service's /v1/profiles
// endpoint and the CLI -target flag are both fed from this list, so a
// profile name accepted by one is accepted by the other — a precondition
// of the service-vs-CLI identity gate.
func Profiles() []hw.Profile {
	return []hw.Profile{
		hw.Tofino(),
		hw.IPU(),
		TofinoScaled(),
		IPUScaled(),
	}
}

// ProfileByName resolves a device profile by its Name field, covering
// both the full devices and the scaled evaluation profiles.
func ProfileByName(name string) (hw.Profile, bool) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, true
		}
	}
	return hw.ByName(name)
}
