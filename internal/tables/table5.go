package tables

import (
	"fmt"
	"strings"
	"time"

	"parserhawk/internal/benchdata"
	"parserhawk/internal/core"
	"parserhawk/internal/hw"
)

// T5Row is one Table 5 row: the ablation of Opt4 (constant synthesis) and
// Opt5 (key grouping) on one benchmark and target. Times in seconds.
type T5Row struct {
	Program  string
	Target   string
	OtherOpt float64 // Opt4 and Opt5 disabled (every other optimization on)
	PlusOpt5 float64 // Opt5 enabled
	PlusOpt4 float64 // Opt4 and Opt5 enabled (the full OPT configuration)
	Err      string
}

// Table5 reproduces the optimization ablation: each configuration keeps
// all other optimizations enabled by default, matching §7.4.
func Table5(timeout time.Duration) []T5Row {
	if timeout == 0 {
		timeout = 2 * time.Minute
	}
	// The ablation runs at wire scale on the full device profiles: with
	// scaled-down benchmarks the constant space is too small for Opt4/Opt5
	// to matter, exactly as one would expect.
	benches := benchdata.WireScale()
	names := []string{"Wire Sai V1", "Wire Dash", "Wire Large tran key"}
	targets := []hw.Profile{hw.Tofino(), hw.IPU()}

	configure := func(opt5, opt4 bool) core.Options {
		o := core.DefaultOptions()
		o.Timeout = timeout
		o.Opt4ConstantSynthesis = opt4
		o.Opt5KeyGrouping = opt5
		return o
	}

	byName := map[string]benchdata.Benchmark{}
	for _, b := range benches {
		byName[b.Family] = b
	}
	var rows []T5Row
	for _, name := range names {
		b, ok := byName[name]
		if !ok {
			continue
		}
		for _, p := range targets {
			row := T5Row{Program: name, Target: p.Name}
			measure := func(o core.Options, recordErr bool) float64 {
				o.MaxIterations = b.MaxIterations
				t0 := time.Now()
				if _, err := core.Compile(b.Spec, p, o); err != nil {
					// Ablated configurations are allowed to time out — that
					// is the measurement; only a failure of the fully
					// optimized configuration is an error.
					if recordErr && row.Err == "" {
						row.Err = err.Error()
					}
					return timeout.Seconds()
				}
				return time.Since(t0).Seconds()
			}
			row.OtherOpt = measure(configure(false, false), false)
			row.PlusOpt5 = measure(configure(true, false), false)
			row.PlusOpt4 = measure(configure(true, true), true)
			rows = append(rows, row)
		}
	}
	return rows
}

// FormatTable5 renders Table 5.
func FormatTable5(rows []T5Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-16s %-14s | %12s %12s %14s\n",
		"Program", "Target", "Other OPT(s)", "+OPT5(s)", "+OPT4,5(s)")
	sb.WriteString(strings.Repeat("-", 76) + "\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-16s %-14s | %12.2f %12.2f %14.2f", r.Program, r.Target,
			r.OtherOpt, r.PlusOpt5, r.PlusOpt4)
		if r.Err != "" {
			fmt.Fprintf(&sb, "  (%s)", r.Err)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
