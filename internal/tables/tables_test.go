package tables

import (
	"strings"
	"testing"
	"time"
)

const testTimeout = 2 * time.Minute

func TestTable3FastModeSubset(t *testing.T) {
	rows := Table3(Config{Filter: "Parse Ethernet", OptTimeout: testTimeout})
	if len(rows) != 4 {
		t.Fatalf("rows=%d want 4", len(rows))
	}
	base := rows[0]
	if base.Tofino.Err != "" || base.IPU.Err != "" {
		t.Fatalf("ParserHawk must compile the base program: %+v", base)
	}
	// ParserHawk's resources must be invariant across the semantic-
	// preserving rewrites — the paper's central robustness claim.
	for _, r := range rows[1:] {
		if r.Tofino.Entries != base.Tofino.Entries {
			t.Errorf("%s: Tofino entries %d != base %d (style dependence!)",
				r.Program, r.Tofino.Entries, base.Tofino.Entries)
		}
		if r.IPU.Stages != base.IPU.Stages {
			t.Errorf("%s: IPU stages %d != base %d", r.Program, r.IPU.Stages, base.IPU.Stages)
		}
	}
	// The written-form compiler pays for the +R1 redundancy.
	r1 := rows[1]
	if r1.VendorTofino.Err == "" && r1.VendorTofino.Entries <= base.VendorTofino.Entries {
		t.Errorf("+R1 must inflate vendor entries: %d vs %d",
			r1.VendorTofino.Entries, base.VendorTofino.Entries)
	}
	// +R2 makes the IPU compiler report a conflict.
	r2 := rows[3]
	if !strings.Contains(r2.VendorIPU.Err, "conflict") {
		t.Errorf("+R2 vendor IPU: err=%q want conflict", r2.VendorIPU.Err)
	}
	// ParserHawk never uses more entries than the vendor output.
	for _, r := range rows {
		if r.VendorTofino.Err == "" && r.Tofino.Entries > r.VendorTofino.Entries {
			t.Errorf("%s: ParserHawk %d > vendor %d entries", r.Program,
				r.Tofino.Entries, r.VendorTofino.Entries)
		}
	}
}

func TestTable3MPLSVendorRejections(t *testing.T) {
	rows := Table3(Config{Filter: "Parse MPLS", OptTimeout: testTimeout})
	for _, r := range rows {
		if r.Program == "Parse MPLS +unroll" {
			if r.VendorIPU.Err != "" {
				t.Errorf("unrolled MPLS must pass the IPU compiler: %q", r.VendorIPU.Err)
			}
			continue
		}
		if !strings.Contains(r.VendorIPU.Err, "loop") {
			t.Errorf("%s: IPU compiler must reject the loop, got %q", r.Program, r.VendorIPU.Err)
		}
		if r.IPU.Err != "" {
			t.Errorf("%s: ParserHawk must compile via unrolling, got %q", r.Program, r.IPU.Err)
		}
	}
}

func TestTable3WideKeyVendorRejection(t *testing.T) {
	rows := Table3(Config{Filter: "Large tran key", OptTimeout: testTimeout})
	for _, r := range rows {
		if r.Program == "Large tran key" {
			if !strings.Contains(r.VendorTofino.Err, "wide tran key") {
				t.Errorf("vendor must reject the wide key, got %q", r.VendorTofino.Err)
			}
			if r.Tofino.Err != "" {
				t.Errorf("ParserHawk must split the key: %q", r.Tofino.Err)
			}
		} else if r.VendorTofino.Err != "" {
			// The +R4 rewrites split the key in source form; the vendor
			// compiler accepts those.
			t.Errorf("%s: vendor should accept the source-split key, got %q",
				r.Program, r.VendorTofino.Err)
		}
	}
}

func TestTable4Shape(t *testing.T) {
	rows := Table4(testTimeout)
	if len(rows) != 5 {
		t.Fatalf("rows=%d", len(rows))
	}
	for _, r := range rows {
		if r.PHErr != "" {
			t.Fatalf("%s: ParserHawk failed: %s", r.Name, r.PHErr)
		}
		if r.DPErr != "" {
			t.Fatalf("%s: DPParserGen failed: %s", r.Name, r.DPErr)
		}
		if r.PH > r.DP {
			t.Errorf("%s: ParserHawk %d > DPParserGen %d", r.Name, r.PH, r.DP)
		}
	}
	// Strict improvements on the motivating examples.
	if rows[1].PH >= rows[1].DP {
		t.Errorf("ME-1: want strict win, got %d vs %d", rows[1].PH, rows[1].DP)
	}
	if rows[3].PH >= rows[3].DP {
		t.Errorf("ME-2@8: want strict win, got %d vs %d", rows[3].PH, rows[3].DP)
	}
	if rows[4].PH != 1 {
		t.Errorf("ME-3: ParserHawk must collapse to 1 entry, got %d", rows[4].PH)
	}
	out := FormatTable4(rows)
	if !strings.Contains(out, "ME-3") || !strings.Contains(out, "Tofino") {
		t.Errorf("format output incomplete:\n%s", out)
	}
}

func TestFigure4Shape(t *testing.T) {
	r, err := Figure4(testTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if r.DeviceAParserHawk >= r.DeviceADPParserGen {
		t.Errorf("device A: ParserHawk %d must beat DPParserGen %d",
			r.DeviceAParserHawk, r.DeviceADPParserGen)
	}
	if r.DeviceBParserHawk > r.DeviceBDPParserGen {
		t.Errorf("device B: ParserHawk %d worse than DPParserGen %d",
			r.DeviceBParserHawk, r.DeviceBDPParserGen)
	}
	if !strings.Contains(FormatFigure4(r), "device A") {
		t.Error("format output incomplete")
	}
}

func TestFigure5StyleIndependence(t *testing.T) {
	r, err := Figure5(testTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if r.Sol1PH != r.Sol2PH {
		t.Errorf("ParserHawk must be style-independent: %d vs %d", r.Sol1PH, r.Sol2PH)
	}
	if r.Sol1DP == r.Sol2DP {
		t.Errorf("rule-based flow must be style-dependent here: both %d", r.Sol1DP)
	}
	if !strings.Contains(FormatFigure5(r), "style-independent") {
		t.Error("format output incomplete")
	}
}

func TestSummarize(t *testing.T) {
	rows := []T3Row{
		{
			Program:      "a",
			Tofino:       TargetResult{Entries: 3, OptSeconds: 1, OrigSeconds: 10, Speedup: 10},
			VendorTofino: TargetResult{Entries: 6},
			IPU:          TargetResult{Stages: 2, OptSeconds: 1, OrigSeconds: 40, Speedup: 40},
			VendorIPU:    TargetResult{Err: "parser loop"},
			FPGA:         TargetResult{Stages: 3, OptSeconds: 1, OrigSeconds: 20, Speedup: 20},
			VendorFPGA:   TargetResult{Stages: 5},
		},
	}
	s := Summarize(rows)
	if s.Cases != 3 || s.ParserHawkOK != 3 {
		t.Errorf("cases=%d ok=%d", s.Cases, s.ParserHawkOK)
	}
	if s.VendorRejects != 1 || s.VendorSuboptimal != 2 {
		t.Errorf("rejects=%d subopt=%d", s.VendorRejects, s.VendorSuboptimal)
	}
	if s.GeomeanSpeedup < 19.9 || s.GeomeanSpeedup > 20.1 {
		t.Errorf("geomean=%f want 20", s.GeomeanSpeedup)
	}
	if !strings.Contains(FormatSummary(s), "geomean") {
		t.Error("summary format incomplete")
	}
}

func TestFormatTable3(t *testing.T) {
	rows := Table3(Config{Filter: "Pure Extraction", OptTimeout: testTimeout})
	out := FormatTable3(rows, false)
	if !strings.Contains(out, "Pure Extraction states") {
		t.Errorf("missing row:\n%s", out)
	}
	outOrig := FormatTable3(rows, true)
	if !strings.Contains(outOrig, "Orig(s)") {
		t.Error("orig columns missing")
	}
}

func TestTable5Ablation(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation timing run")
	}
	rows := Table5(30 * time.Second)
	if len(rows) != 6 {
		t.Fatalf("rows=%d want 6", len(rows))
	}
	for _, r := range rows {
		if r.Err != "" {
			t.Errorf("%s/%s: full-OPT config failed: %s", r.Program, r.Target, r.Err)
		}
		if r.PlusOpt4 <= 0 {
			t.Errorf("%s/%s: missing full-OPT time", r.Program, r.Target)
		}
		// The full configuration must never be slower than the ablated
		// ones by more than measurement noise.
		if r.PlusOpt4 > r.OtherOpt*2+1 {
			t.Errorf("%s/%s: full OPT %.2fs slower than ablated %.2fs",
				r.Program, r.Target, r.PlusOpt4, r.OtherOpt)
		}
	}
	if !strings.Contains(FormatTable5(rows), "+OPT4,5") {
		t.Error("format output incomplete")
	}
}

func TestOrigModeOnSmallBenchmark(t *testing.T) {
	if testing.Short() {
		t.Skip("naive-mode timing run")
	}
	rows := Table3(Config{Filter: "Multi-key (same pkt field) -R5-R3",
		OptTimeout: testTimeout, OrigTimeout: 30 * time.Second, RunOrig: true})
	if len(rows) != 1 {
		t.Fatalf("rows=%d", len(rows))
	}
	r := rows[0].Tofino
	if r.Err != "" {
		t.Fatal(r.Err)
	}
	if r.OrigSeconds == 0 {
		t.Error("naive mode did not run")
	}
	if !r.OrigTimeout && r.Speedup < 1 {
		t.Logf("note: naive mode faster than OPT on a tiny benchmark (%.2fx)", r.Speedup)
	}
}

func TestMatchFilter(t *testing.T) {
	cases := []struct {
		name, filter string
		want         bool
	}{
		{"Deep QUIC", "", true},
		{"Deep QUIC", "Deep", true},
		{"Parse MPLS", "Deep", false},
		{"Parse MPLS", "Parse,Deep", true},
		{"Deep SRv6", "Parse,Deep", true},
		{"Multi-key", "Parse, Deep", false},
		{"Deep GRE", "Parse, Deep", true},
		{"Deep GRE", ",", false},
	}
	for _, c := range cases {
		if got := matchFilter(c.name, c.filter); got != c.want {
			t.Errorf("matchFilter(%q, %q) = %v, want %v", c.name, c.filter, got, c.want)
		}
	}
}
