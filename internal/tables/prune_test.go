package tables

import (
	"testing"
	"time"

	"parserhawk/internal/benchdata"
	"parserhawk/internal/core"
	"parserhawk/internal/sim"
)

// TestPruningIsSoundAndNeverCostsEntries is the acceptance check for the
// SpecLint prune feeding the compiler: on benchmarks that carry prunable
// redundancy (the +R1 duplicate-rule and +R2 unreachable-state rewrites,
// plus Parse MPLS whose source has a literal duplicate rule), the
// default compilation (lint + prune on) must
//
//  1. produce a program equivalent to the ORIGINAL, unpruned spec — the
//     prune may only remove provably-dead structure, and
//  2. use no more TCAM entries than a compilation with linting skipped.
func TestPruningIsSoundAndNeverCostsEntries(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles several benchmarks")
	}
	names := []string{
		"Parse Ethernet +R1",
		"Parse Ethernet +R2",
		"Parse MPLS",
		"Sai V1 +R2",
	}
	profile := TofinoScaled()
	for _, name := range names {
		b, ok := benchdata.ByName(name)
		if !ok {
			t.Fatalf("unknown benchmark %q", name)
		}
		opts := core.DefaultOptions()
		opts.Timeout = 60 * time.Second
		opts.MaxIterations = b.MaxIterations

		pruned, err := core.Compile(b.Spec, profile, opts)
		if err != nil {
			t.Errorf("%s: pruned compile: %v", name, err)
			continue
		}
		if pruned.Stats.Lint.StatesAfter > pruned.Stats.Lint.StatesBefore ||
			pruned.Stats.Lint.RulesAfter >= pruned.Stats.Lint.RulesBefore {
			t.Errorf("%s: expected the prune to remove rules: %+v", name, pruned.Stats.Lint)
		}

		// Soundness: equivalent to the original spec, not the pruned one.
		// maxIter 0 selects the full iteration budget — the loop-capable
		// target implements the spec outright, same contract as the §7.1
		// validation suite.
		rep := sim.Check(b.Spec, pruned.Program, 0, 16, 0, 1)
		if !rep.OK() {
			t.Errorf("%s: pruned program diverges from the original spec: %s", name, rep)
		}

		noLint := opts
		noLint.SkipLint = true
		unpruned, err := core.Compile(b.Spec, profile, noLint)
		if err != nil {
			t.Errorf("%s: unpruned compile: %v", name, err)
			continue
		}
		if pruned.Resources.Entries > unpruned.Resources.Entries {
			t.Errorf("%s: pruning cost entries: %d with lint vs %d without",
				name, pruned.Resources.Entries, unpruned.Resources.Entries)
		}
	}
}
