package tables

import (
	"strings"
	"testing"
	"time"

	"parserhawk/internal/benchdata"
	"parserhawk/internal/core"
	"parserhawk/internal/hw"
)

// TestCompileTargetsComparison runs the multi-target fan-out the
// parserhawk -targets mode uses: one spec across all three scaled
// profiles, every row ok, every row certified by the independent
// checker, and each row reporting in its own objective's units.
func TestCompileTargetsComparison(t *testing.T) {
	b, ok := benchdata.ByName("Parse Ethernet")
	if !ok {
		t.Fatal("Parse Ethernet benchmark missing")
	}
	opts := core.DefaultOptions()
	opts.Timeout = 2 * time.Minute
	opts.Workers = 4
	profiles := []hw.Profile{TofinoScaled(), IPUScaled(), FPGAScaled()}
	runs := CompileTargets(b.Spec, profiles, opts)
	if len(runs) != len(profiles) {
		t.Fatalf("runs=%d want %d", len(runs), len(profiles))
	}
	for i, r := range runs {
		if r.Target != profiles[i].Name {
			t.Errorf("run %d: target %q, want %q (request order must be preserved)", i, r.Target, profiles[i].Name)
		}
		if r.Verdict != "ok" {
			t.Errorf("%s: verdict %q (%s)", r.Target, r.Verdict, r.Err)
			continue
		}
		if !r.Certified {
			t.Errorf("%s: compiled but uncertified: %s", r.Target, r.CertErr)
		}
		if r.Objective != profiles[i].Objective.For(profiles[i].Arch) {
			t.Errorf("%s: objective %v", r.Target, r.Objective)
		}
	}
	out := FormatTargets(runs)
	for _, want := range []string{"tofino-scaled", "ipu-scaled", "fpga-scaled", "min-depth", "objective"} {
		if !strings.Contains(out, want) {
			t.Errorf("comparison table missing %q:\n%s", want, out)
		}
	}
}
