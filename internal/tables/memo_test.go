package tables

import (
	"testing"
	"time"

	"parserhawk/internal/memo"
)

// TestMemoHarnessWarmRun runs one tiny benchmark through the harness path
// twice over one memo: the cold pass must record misses and stores, the
// warm pass must replay identical results as tier-1 hits, and both
// passes' records must carry the per-compilation memo counters.
func TestMemoHarnessWarmRun(t *testing.T) {
	mc, err := memo.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var runs []RunStats
	cfg := Config{
		OptTimeout: 30 * time.Second,
		Filter:     "Multi-key (same pkt field) -R5-R3",
		Memo:       mc,
		StatsSink:  func(r RunStats) { runs = append(runs, r) },
	}
	cold := Table3(cfg)
	if len(cold) != 1 {
		t.Fatalf("filter matched %d benchmarks, want 1", len(cold))
	}
	coldRuns := runs
	for _, r := range coldRuns {
		if r.Memo == nil {
			t.Fatalf("%s/%s: cold record has no memo counters", r.Program, r.Target)
		}
		if r.Memo.T1Hits != 0 || r.Memo.T1Misses != 1 {
			t.Errorf("%s/%s: cold memo counters: %+v", r.Program, r.Target, r.Memo)
		}
	}

	runs = nil
	warm := Table3(cfg)
	if warm[0].Tofino.Entries != cold[0].Tofino.Entries ||
		warm[0].Tofino.Stages != cold[0].Tofino.Stages ||
		warm[0].IPU.Entries != cold[0].IPU.Entries ||
		warm[0].IPU.Stages != cold[0].IPU.Stages {
		t.Fatalf("warm row diverged from cold:\ncold %+v\nwarm %+v", cold[0], warm[0])
	}
	for _, r := range runs {
		if r.Memo == nil || r.Memo.T1Hits != 1 || r.Memo.T1Misses != 0 {
			t.Errorf("%s/%s: warm memo counters: %+v", r.Program, r.Target, r.Memo)
		}
	}
	if st := mc.Stats(); st.T1Stores == 0 {
		t.Errorf("no tier-1 entries stored: %+v", st)
	}
}
