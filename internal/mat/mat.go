// Package mat models a match-action pipeline — the packet-processing
// half of the interleaved parser architecture of Figure 2(c) (Broadcom
// Trident style). Devices of that class can jump out of the parser into
// the pipeline, let match-action tables rewrite header fields, and return
// to parsing, so later parse decisions can depend on rewritten values.
//
// The model is deliberately small: a pipeline is a sequence of tables;
// each table matches ternary patterns over already-extracted fields and
// applies field updates. It is exactly enough substrate to express — and
// test — the "more expressive parsing behavior" the paper attributes to
// interleaved devices (§3.1).
package mat

import (
	"fmt"
	"strings"

	"parserhawk/internal/bitstream"
)

// Action is one field update applied when a rule matches.
type Action struct {
	// Field is the destination header field.
	Field string
	// Width is the destination width in bits.
	Width int

	// Exactly one source:
	SetConst *uint64 // write a constant
	CopyFrom string  // copy another field's value (truncated/zero-extended)
	AddConst *int64  // add a signed constant to the current value
}

// Rule is one match-action entry: fires when every keyed field matches
// its (value, mask) pattern; entries are checked in priority order.
type Rule struct {
	Match   []FieldMatch
	Actions []Action
}

// FieldMatch is a ternary condition over one field.
type FieldMatch struct {
	Field       string
	Value, Mask uint64
	Width       int
}

// Table is one match-action stage: the first matching rule fires; if none
// match, the table is a no-op (standard miss-means-skip semantics).
type Table struct {
	Name  string
	Rules []Rule
}

// Pipeline is an ordered sequence of tables.
type Pipeline struct {
	Tables []Table
}

// Apply runs the pipeline over a field dictionary, returning the updated
// dictionary. Fields never extracted read as absent and never match.
func (p *Pipeline) Apply(dict bitstream.Dict) bitstream.Dict {
	out := dict.Clone()
	for ti := range p.Tables {
		t := &p.Tables[ti]
		for ri := range t.Rules {
			r := &t.Rules[ri]
			if !r.matches(out) {
				continue
			}
			for _, a := range r.Actions {
				applyAction(out, a)
			}
			break // first match per table
		}
	}
	return out
}

func (r *Rule) matches(dict bitstream.Dict) bool {
	for _, m := range r.Match {
		v, ok := dict[m.Field]
		if !ok {
			return false
		}
		got := v.Uint(0, m.Width)
		if got&m.Mask != m.Value&m.Mask {
			return false
		}
	}
	return true
}

func applyAction(dict bitstream.Dict, a Action) {
	switch {
	case a.SetConst != nil:
		dict[a.Field] = bitstream.FromUint(*a.SetConst, a.Width)
	case a.CopyFrom != "":
		src := dict[a.CopyFrom]
		dict[a.Field] = bitstream.FromUint(src.Uint(0, len(src)), a.Width)
	case a.AddConst != nil:
		cur := int64(dict[a.Field].Uint(0, a.Width))
		dict[a.Field] = bitstream.FromUint(uint64(cur+*a.AddConst), a.Width)
	}
}

// Validate checks structural sanity: every action has exactly one source
// and a positive width.
func (p *Pipeline) Validate() error {
	for ti := range p.Tables {
		for ri, r := range p.Tables[ti].Rules {
			for ai, a := range r.Actions {
				n := 0
				if a.SetConst != nil {
					n++
				}
				if a.CopyFrom != "" {
					n++
				}
				if a.AddConst != nil {
					n++
				}
				if n != 1 {
					return fmt.Errorf("mat: table %q rule %d action %d has %d sources, want 1",
						p.Tables[ti].Name, ri, ai, n)
				}
				if a.Width <= 0 || a.Width > 64 {
					return fmt.Errorf("mat: table %q rule %d action %d has bad width %d",
						p.Tables[ti].Name, ri, ai, a.Width)
				}
			}
		}
	}
	return nil
}

// String renders the pipeline for diagnostics.
func (p *Pipeline) String() string {
	var sb strings.Builder
	for _, t := range p.Tables {
		fmt.Fprintf(&sb, "table %s:\n", t.Name)
		for _, r := range t.Rules {
			var ms, as []string
			for _, m := range r.Match {
				ms = append(ms, fmt.Sprintf("%s&%#x==%#x", m.Field, m.Mask, m.Value&m.Mask))
			}
			for _, a := range r.Actions {
				switch {
				case a.SetConst != nil:
					as = append(as, fmt.Sprintf("%s=%#x", a.Field, *a.SetConst))
				case a.CopyFrom != "":
					as = append(as, fmt.Sprintf("%s=%s", a.Field, a.CopyFrom))
				case a.AddConst != nil:
					as = append(as, fmt.Sprintf("%s+=%d", a.Field, *a.AddConst))
				}
			}
			fmt.Fprintf(&sb, "  [%s] -> [%s]\n", strings.Join(ms, " && "), strings.Join(as, "; "))
		}
	}
	return sb.String()
}

// U64 is a convenience for building SetConst actions.
func U64(v uint64) *uint64 { return &v }

// I64 is a convenience for building AddConst actions.
func I64(v int64) *int64 { return &v }
