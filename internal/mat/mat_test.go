package mat

import (
	"strings"
	"testing"

	"parserhawk/internal/bitstream"
)

func dictOf(pairs map[string]uint64, widths map[string]int) bitstream.Dict {
	d := bitstream.Dict{}
	for k, v := range pairs {
		d[k] = bitstream.FromUint(v, widths[k])
	}
	return d
}

func TestSetConst(t *testing.T) {
	p := &Pipeline{Tables: []Table{{
		Name: "t",
		Rules: []Rule{{
			Match:   []FieldMatch{{Field: "f", Value: 3, Mask: 0xF, Width: 4}},
			Actions: []Action{{Field: "g", Width: 4, SetConst: U64(9)}},
		}},
	}}}
	out := p.Apply(dictOf(map[string]uint64{"f": 3, "g": 0}, map[string]int{"f": 4, "g": 4}))
	if got := out["g"].Uint(0, 4); got != 9 {
		t.Errorf("g=%d", got)
	}
	// Non-matching value: no-op.
	out = p.Apply(dictOf(map[string]uint64{"f": 5, "g": 0}, map[string]int{"f": 4, "g": 4}))
	if got := out["g"].Uint(0, 4); got != 0 {
		t.Errorf("miss must not act, g=%d", got)
	}
}

func TestCopyAndAdd(t *testing.T) {
	p := &Pipeline{Tables: []Table{{
		Rules: []Rule{{
			Actions: []Action{
				{Field: "dst", Width: 8, CopyFrom: "src"},
				{Field: "ttl", Width: 8, AddConst: I64(-1)},
			},
		}},
	}}}
	out := p.Apply(dictOf(map[string]uint64{"src": 0xAB, "dst": 0, "ttl": 64},
		map[string]int{"src": 8, "dst": 8, "ttl": 8}))
	if out["dst"].Uint(0, 8) != 0xAB {
		t.Error("copy failed")
	}
	if out["ttl"].Uint(0, 8) != 63 {
		t.Error("decrement failed")
	}
}

func TestFirstMatchPerTablePriority(t *testing.T) {
	p := &Pipeline{Tables: []Table{{
		Rules: []Rule{
			{
				Match:   []FieldMatch{{Field: "f", Value: 0b10, Mask: 0b10, Width: 2}},
				Actions: []Action{{Field: "g", Width: 4, SetConst: U64(1)}},
			},
			{
				Actions: []Action{{Field: "g", Width: 4, SetConst: U64(2)}},
			},
		},
	}}}
	out := p.Apply(dictOf(map[string]uint64{"f": 0b11, "g": 0}, map[string]int{"f": 2, "g": 4}))
	if out["g"].Uint(0, 4) != 1 {
		t.Error("first match must win")
	}
	out = p.Apply(dictOf(map[string]uint64{"f": 0b01, "g": 0}, map[string]int{"f": 2, "g": 4}))
	if out["g"].Uint(0, 4) != 2 {
		t.Error("fallthrough to wildcard rule")
	}
}

func TestTablesChainEffects(t *testing.T) {
	// Table 1 writes a field table 2 matches on.
	p := &Pipeline{Tables: []Table{
		{Rules: []Rule{{Actions: []Action{{Field: "x", Width: 4, SetConst: U64(7)}}}}},
		{Rules: []Rule{{
			Match:   []FieldMatch{{Field: "x", Value: 7, Mask: 0xF, Width: 4}},
			Actions: []Action{{Field: "y", Width: 4, SetConst: U64(1)}},
		}}},
	}}
	out := p.Apply(dictOf(map[string]uint64{"x": 0, "y": 0}, map[string]int{"x": 4, "y": 4}))
	if out["y"].Uint(0, 4) != 1 {
		t.Error("later table must see earlier table's writes")
	}
}

func TestMissingFieldNeverMatches(t *testing.T) {
	p := &Pipeline{Tables: []Table{{
		Rules: []Rule{{
			Match:   []FieldMatch{{Field: "ghost", Value: 0, Mask: 0, Width: 4}},
			Actions: []Action{{Field: "g", Width: 4, SetConst: U64(1)}},
		}},
	}}}
	out := p.Apply(dictOf(map[string]uint64{"g": 0}, map[string]int{"g": 4}))
	if out["g"].Uint(0, 4) != 0 {
		t.Error("rule over an absent field must not fire")
	}
}

func TestApplyDoesNotMutateInput(t *testing.T) {
	p := &Pipeline{Tables: []Table{{
		Rules: []Rule{{Actions: []Action{{Field: "f", Width: 4, SetConst: U64(9)}}}},
	}}}
	in := dictOf(map[string]uint64{"f": 1}, map[string]int{"f": 4})
	_ = p.Apply(in)
	if in["f"].Uint(0, 4) != 1 {
		t.Error("Apply must not mutate its input dictionary")
	}
}

func TestValidate(t *testing.T) {
	bad := &Pipeline{Tables: []Table{{
		Rules: []Rule{{Actions: []Action{{Field: "f", Width: 4}}}}, // no source
	}}}
	if err := bad.Validate(); err == nil {
		t.Error("zero-source action must fail validation")
	}
	bad2 := &Pipeline{Tables: []Table{{
		Rules: []Rule{{Actions: []Action{{Field: "f", Width: 0, SetConst: U64(1)}}}},
	}}}
	if err := bad2.Validate(); err == nil {
		t.Error("zero width must fail validation")
	}
	both := &Pipeline{Tables: []Table{{
		Rules: []Rule{{Actions: []Action{{Field: "f", Width: 4, SetConst: U64(1), CopyFrom: "g"}}}},
	}}}
	if err := both.Validate(); err == nil {
		t.Error("two sources must fail validation")
	}
}

func TestString(t *testing.T) {
	p := &Pipeline{Tables: []Table{{
		Name: "norm",
		Rules: []Rule{{
			Match:   []FieldMatch{{Field: "f", Value: 1, Mask: 1, Width: 1}},
			Actions: []Action{{Field: "g", Width: 4, SetConst: U64(2)}},
		}},
	}}}
	s := p.String()
	if !strings.Contains(s, "norm") || !strings.Contains(s, "g=0x2") {
		t.Errorf("render:\n%s", s)
	}
}
