// Command hawkd is the ParserHawk compile service: a long-running
// HTTP/JSON server wrapping the synthesis compiler for concurrent
// clients, with a content-addressed result cache, single-flight request
// coalescing, per-request deadlines, and a fair shared worker pool.
//
// Usage:
//
//	hawkd -addr 127.0.0.1:8080
//
// Endpoints:
//
//	POST /v1/compile?timeout=30s   compile a spec (JSON body; see below)
//	GET  /v1/profiles              list the resolvable target devices
//	GET  /stats                    Prometheus text-format metrics
//	GET  /healthz                  liveness probe
//
// Compile a spec:
//
//	curl -s localhost:8080/v1/compile -d '{
//	  "source":  "header h { bit<8> t; } parser P { state start { extract(h); transition accept; } }",
//	  "profile": "tofino"
//	}'
//
// The response carries the verdict (ok, no_solution, lint_error, or
// unknown), the TCAM entry table exactly as the parserhawk CLI prints
// it, the resource footprint, full synthesis statistics, and whether the
// result came from the cache, a coalesced in-flight compile, or a fresh
// compilation. A request that exceeds its deadline receives verdict
// "unknown" — never a wrong verdict.
//
// A request may instead carry "targets": ["tofino", "ipu", "fpga"] —
// mutually exclusive with "profile" — to fan one spec across several
// devices in a single round trip. The response then has verdict "multi"
// and a targets array of ordinary per-target responses, each stamped
// with its profile name; the per-target compiles share the cache, the
// coalescing index, and the worker pool, and /stats breaks verdicts out
// per profile (hawkd_compile_profile_verdicts_total).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"parserhawk/internal/memo"
	"parserhawk/internal/serve"
)

func main() {
	var (
		addr           = flag.String("addr", "127.0.0.1:8080", "listen address")
		defaultProfile = flag.String("default-profile", "tofino", "profile used when a request names none")
		cacheBytes     = flag.Int64("cache-bytes", 64<<20, "result cache byte budget")
		defaultTimeout = flag.Duration("default-timeout", 60*time.Second, "per-request wait deadline when the request sets none")
		maxTimeout     = flag.Duration("max-timeout", 10*time.Minute, "ceiling on the ?timeout= a request may ask for")
		compileTimeout = flag.Duration("compile-timeout", 5*time.Minute, "server-side bound on a single compilation")
		workers        = flag.Int("workers", 0, "portfolio worker tokens shared across requests (0 = GOMAXPROCS)")
		memoDir        = flag.String("memo-dir", "", "persist the cross-compile memo under this directory (survives restarts)")
		noMemo         = flag.Bool("no-memo", false, "disable the cross-compile memo even when -memo-dir is set")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: hawkd [flags]")
		flag.Usage()
		os.Exit(2)
	}

	cfg := serve.Config{
		DefaultProfile: *defaultProfile,
		CacheBytes:     *cacheBytes,
		DefaultTimeout: *defaultTimeout,
		MaxTimeout:     *maxTimeout,
		CompileTimeout: *compileTimeout,
		Workers:        *workers,
	}
	if *memoDir != "" && !*noMemo {
		mc, err := memo.Open(*memoDir)
		if err != nil {
			log.Fatalf("hawkd: %v", err)
		}
		cfg.Memo = mc
	}
	srv := serve.New(cfg)

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("hawkd: listening on %s (default profile %s, %s)", *addr, *defaultProfile, workerDesc(*workers))

	select {
	case err := <-errCh:
		log.Fatalf("hawkd: %v", err)
	case <-ctx.Done():
		log.Printf("hawkd: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			log.Printf("hawkd: shutdown: %v", err)
		}
	}
}

func workerDesc(w int) string {
	if w <= 0 {
		return "workers=GOMAXPROCS"
	}
	return fmt.Sprintf("workers=%d", w)
}
