// Command hawkidentity is the service-vs-CLI identity gate: it replays a
// slice of the Table 3 benchmark suite through a running hawkd instance
// and through the parserhawk CLI binary, and fails on any divergence in
// verdict, TCAM entry table, entry count, or stage count. It also
// exercises the service's cache (a repeated spec must be served without
// another compilation) and its request coalescing (two concurrent
// identical requests must share one compilation).
//
// Usage:
//
//	hawkidentity -addr http://127.0.0.1:8080 -parserhawk ./parserhawk \
//	    -target tofino-scaled -filter 'Parse'
//
// The gate fails when the filter matches zero benchmarks, so a renamed
// suite cannot silently disable it.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"parserhawk"
	"parserhawk/internal/benchdata"
	"parserhawk/internal/serve"
)

func main() {
	var (
		addr    = flag.String("addr", "http://127.0.0.1:8080", "base URL of the running hawkd instance")
		cli     = flag.String("parserhawk", "./parserhawk", "path to the parserhawk CLI binary")
		target  = flag.String("target", "tofino-scaled", "profile name to compile for (must be known to both sides)")
		filter  = flag.String("filter", "Parse", "restrict benchmarks to names containing this string")
		timeout = flag.Duration("timeout", 120*time.Second, "per-compilation time budget")
	)
	flag.Parse()

	var benches []benchdata.Benchmark
	for _, b := range benchdata.All() {
		if *filter == "" || strings.Contains(b.Name(), *filter) {
			benches = append(benches, b)
		}
	}
	if len(benches) == 0 {
		fatalf("replay matched zero specs (filter %q) — the gate would be vacuous", *filter)
	}

	tmp, err := os.MkdirTemp("", "hawkidentity")
	if err != nil {
		fatalf("%v", err)
	}
	defer os.RemoveAll(tmp)

	g := &gate{addr: strings.TrimRight(*addr, "/"), cli: *cli, target: *target, timeout: *timeout, tmp: tmp}
	mismatches := 0
	var firstOK *benchdata.Benchmark
	var firstResp serve.CompileResponse
	for i := range benches {
		b := benches[i]
		resp, err := g.check(b)
		if err != nil {
			fmt.Fprintf(os.Stderr, "MISMATCH %-36s %v\n", b.Name(), err)
			mismatches++
			continue
		}
		if firstOK == nil {
			firstOK = &benches[i]
			firstResp = resp
		}
	}
	if firstOK == nil {
		fatalf("no benchmark produced a comparable outcome on either side")
	}
	if err := g.checkCache(*firstOK, firstResp); err != nil {
		fmt.Fprintf(os.Stderr, "CACHE FAILURE: %v\n", err)
		mismatches++
	}
	if err := g.checkCoalescing(*firstOK); err != nil {
		fmt.Fprintf(os.Stderr, "COALESCE FAILURE: %v\n", err)
		mismatches++
	}
	if mismatches > 0 {
		fatalf("%d identity failure(s) over %d benchmark(s)", mismatches, len(benches))
	}
	fmt.Printf("hawkidentity: %d benchmark(s) identical between hawkd and the CLI; cache and coalescing verified\n", len(benches))
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "hawkidentity: "+format+"\n", args...)
	os.Exit(1)
}

// sideOutcome is one compiler invocation's comparable surface.
type sideOutcome struct {
	verdict string
	program string // entry table text (Program.String())
	entries int
	stages  int
}

func (o sideOutcome) String() string {
	if o.verdict != serve.VerdictOK {
		return o.verdict
	}
	return fmt.Sprintf("%s entries=%d stages=%d", o.verdict, o.entries, o.stages)
}

type gate struct {
	addr    string
	cli     string
	target  string
	timeout time.Duration
	tmp     string
}

// check compiles one benchmark through both sides and compares; the
// service response is returned so later probes can diff its certificate
// against a cached replay.
func (g *gate) check(b benchdata.Benchmark) (serve.CompileResponse, error) {
	src, err := parserhawk.PrintSpec(b.Spec)
	if err != nil {
		return serve.CompileResponse{}, fmt.Errorf("rendering spec: %v", err)
	}
	cliOut, err := g.runCLI(b, src)
	if err != nil {
		return serve.CompileResponse{}, err
	}
	svcOut, resp, err := g.runService(b, src, 0)
	if err != nil {
		return serve.CompileResponse{}, err
	}
	if diff := compare(cliOut, svcOut); diff != "" {
		return serve.CompileResponse{}, fmt.Errorf("%s", diff)
	}
	if svcOut.verdict == serve.VerdictOK {
		if resp.CertificateError != "" {
			return serve.CompileResponse{}, fmt.Errorf("service certificate failed its own check: %s", resp.CertificateError)
		}
		if len(resp.Certificate) == 0 {
			return serve.CompileResponse{}, fmt.Errorf("service ok response carries no certificate")
		}
	}
	fmt.Printf("ok %-36s %s\n", b.Name(), cliOut)
	return resp, nil
}

func compare(cli, svc sideOutcome) string {
	if cli.verdict != svc.verdict {
		return fmt.Sprintf("verdict: CLI %s, service %s", cli, svc)
	}
	if cli.verdict != serve.VerdictOK {
		return ""
	}
	if cli.entries != svc.entries {
		return fmt.Sprintf("entries: CLI %d, service %d", cli.entries, svc.entries)
	}
	if cli.stages != svc.stages {
		return fmt.Sprintf("stages: CLI %d, service %d", cli.stages, svc.stages)
	}
	if cli.program != svc.program {
		return fmt.Sprintf("entry tables differ:\n--- CLI ---\n%s--- service ---\n%s", cli.program, svc.program)
	}
	return ""
}

// runCLI compiles via the parserhawk binary, decoding the deployment
// JSON it emits so the entry table and resource counts come from the
// CLI's own output artifact.
func (g *gate) runCLI(b benchdata.Benchmark, src string) (sideOutcome, error) {
	file := filepath.Join(g.tmp, sanitize(b.Name())+".p4")
	if err := os.WriteFile(file, []byte(src), 0o644); err != nil {
		return sideOutcome{}, err
	}
	cmd := exec.Command(g.cli,
		"-target", g.target,
		"-timeout", g.timeout.String(),
		"-unroll", strconv.Itoa(b.MaxIterations),
		"-verify=false", "-q", "-json",
		file)
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	runErr := cmd.Run()
	if runErr == nil {
		prog, err := parserhawk.DecodeProgramJSON(stdout.Bytes())
		if err != nil {
			return sideOutcome{}, fmt.Errorf("decoding CLI program JSON: %v", err)
		}
		res := prog.Resources()
		return sideOutcome{
			verdict: serve.VerdictOK,
			program: prog.String(),
			entries: res.Entries,
			stages:  res.Stages,
		}, nil
	}
	msg := stderr.String()
	switch {
	case strings.Contains(msg, "timed out"):
		return sideOutcome{verdict: serve.VerdictUnknown}, nil
	case strings.Contains(msg, "no implementation fits"):
		return sideOutcome{verdict: serve.VerdictNoSolution}, nil
	case strings.Contains(msg, "rejected by lint"):
		return sideOutcome{verdict: serve.VerdictLintError}, nil
	}
	return sideOutcome{}, fmt.Errorf("CLI failed: %v: %s", runErr, strings.TrimSpace(msg))
}

// runService compiles via POST /v1/compile. seed=0 keeps the library
// default; a non-zero seed addresses a fresh cache entry (used by the
// coalescing probe).
func (g *gate) runService(b benchdata.Benchmark, src string, seed int64) (sideOutcome, serve.CompileResponse, error) {
	req := serve.CompileRequest{
		Source:  src,
		Profile: g.target,
		Options: &serve.CompileOptions{MaxIterations: b.MaxIterations, Seed: seed},
	}
	body, err := jsonBody(req)
	if err != nil {
		return sideOutcome{}, serve.CompileResponse{}, err
	}
	// The wait deadline comfortably exceeds the compile budget: this gate
	// measures identity, not latency.
	url := fmt.Sprintf("%s/v1/compile?timeout=%s", g.addr, (2 * g.timeout).String())
	httpResp, err := http.Post(url, "application/json", body)
	if err != nil {
		return sideOutcome{}, serve.CompileResponse{}, fmt.Errorf("POST /v1/compile: %v", err)
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK {
		var buf bytes.Buffer
		buf.ReadFrom(httpResp.Body)
		return sideOutcome{}, serve.CompileResponse{}, fmt.Errorf("service HTTP %d: %s", httpResp.StatusCode, strings.TrimSpace(buf.String()))
	}
	var resp serve.CompileResponse
	if err := jsonDecode(httpResp.Body, &resp); err != nil {
		return sideOutcome{}, serve.CompileResponse{}, fmt.Errorf("decoding service response: %v", err)
	}
	return sideOutcome{
		verdict: resp.Verdict,
		program: resp.Program,
		entries: resp.Entries,
		stages:  resp.Stages,
	}, resp, nil
}

// checkCache replays an already-compiled benchmark and requires the
// response to come from the cache without another compilation starting,
// carrying byte-identical certificate content to the fresh compile —
// a cached replay must not serve a stale or regenerated certificate.
func (g *gate) checkCache(b benchdata.Benchmark, fresh serve.CompileResponse) error {
	src, err := parserhawk.PrintSpec(b.Spec)
	if err != nil {
		return err
	}
	before, err := g.scrapeCounter("hawkd_compiles_total")
	if err != nil {
		return err
	}
	_, resp, err := g.runService(b, src, 0)
	if err != nil {
		return err
	}
	if resp.Cache != serve.CacheHit {
		return fmt.Errorf("repeated spec %q not served from cache (disposition %q)", b.Name(), resp.Cache)
	}
	after, err := g.scrapeCounter("hawkd_compiles_total")
	if err != nil {
		return err
	}
	if after != before {
		return fmt.Errorf("repeated spec %q incremented hawkd_compiles_total (%d -> %d)", b.Name(), before, after)
	}
	if !bytes.Equal(resp.Certificate, fresh.Certificate) {
		return fmt.Errorf("repeated spec %q: cached certificate differs from the fresh compile's (%d vs %d bytes)",
			b.Name(), len(resp.Certificate), len(fresh.Certificate))
	}
	fmt.Printf("ok cache: repeated %q served from cache with identical certificate, compile counter unchanged at %d\n", b.Name(), after)
	return nil
}

// checkCoalescing fires two concurrent identical requests at a fresh
// cache key (a new seed) and requires them to have shared exactly one
// compilation with identical outcomes.
func (g *gate) checkCoalescing(b benchdata.Benchmark) error {
	src, err := parserhawk.PrintSpec(b.Spec)
	if err != nil {
		return err
	}
	const seed = 7 // any non-default seed: a fresh content address
	before, err := g.scrapeCounter("hawkd_compiles_total")
	if err != nil {
		return err
	}
	outs := make([]sideOutcome, 2)
	resps := make([]serve.CompileResponse, 2)
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs[i], resps[i], errs[i] = g.runService(b, src, seed)
		}(i)
	}
	wg.Wait()
	for i, e := range errs {
		if e != nil {
			return fmt.Errorf("concurrent request %d: %v", i, e)
		}
	}
	if diff := compare(outs[0], outs[1]); diff != "" {
		return fmt.Errorf("concurrent identical requests diverged: %s", diff)
	}
	after, err := g.scrapeCounter("hawkd_compiles_total")
	if err != nil {
		return err
	}
	if after-before != 1 {
		return fmt.Errorf("concurrent identical pair ran %d compilations, want exactly 1", after-before)
	}
	fmt.Printf("ok coalesce: concurrent pair shared one compilation (dispositions %q, %q)\n",
		resps[0].Cache, resps[1].Cache)
	return nil
}

// scrapeCounter reads one un-labeled counter from GET /stats.
func (g *gate) scrapeCounter(name string) (int64, error) {
	resp, err := http.Get(g.addr + "/stats")
	if err != nil {
		return 0, fmt.Errorf("GET /stats: %v", err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		return 0, err
	}
	for _, line := range strings.Split(buf.String(), "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			return strconv.ParseInt(strings.TrimSpace(rest), 10, 64)
		}
	}
	return 0, fmt.Errorf("metric %s not found in /stats", name)
}

func jsonBody(v any) (io.Reader, error) {
	data, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	return bytes.NewReader(data), nil
}

func jsonDecode(r io.Reader, v any) error {
	return json.NewDecoder(r).Decode(v)
}

func sanitize(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_', r == '.':
			return r
		default:
			return '_'
		}
	}, name)
}
