// Command hawkbench regenerates the paper's evaluation tables and figures
// (§7) from this repository's implementations.
//
// Usage:
//
//	hawkbench -table 3                  # ParserHawk vs vendor compilers
//	hawkbench -table 3 -orig            # include the naive-mode columns (slow)
//	hawkbench -table 4                  # ParserHawk vs DPParserGen
//	hawkbench -table 5                  # Opt4/Opt5 ablation
//	hawkbench -figure 4                 # the §3.2.1 motivating example
//	hawkbench -figure 5                 # the §3.2.2 written-style example
//	hawkbench -summary                  # §7 headline statistics
//	hawkbench -all                      # everything (with -orig if set)
//	hawkbench -retarget                 # §7.3 cross-device compilation demo
//	hawkbench -table 3 -stats runs.json # per-run solver statistics as JSON
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"parserhawk"
	"parserhawk/internal/benchdata"
	"parserhawk/internal/memo"
	"parserhawk/internal/tables"
)

func main() {
	var (
		table       = flag.Int("table", 0, "regenerate table 3, 4, or 5")
		figure      = flag.Int("figure", 0, "regenerate figure 4 or 5")
		summary     = flag.Bool("summary", false, "print the §7 headline statistics (implies a Table 3 run)")
		all         = flag.Bool("all", false, "regenerate every table and figure")
		retarget    = flag.Bool("retarget", false, "demonstrate §7.3 cross-device retargetability")
		runOrig     = flag.Bool("orig", false, "include the naive-mode timing columns (slow)")
		filter      = flag.String("filter", "", "restrict Table 3 to benchmarks matching any comma-separated substring")
		optTimeout  = flag.Duration("timeout", 2*time.Minute, "per-compilation budget for the optimized mode")
		origTimeout = flag.Duration("orig-timeout", 10*time.Second, "per-compilation budget for the naive mode")
		statsOut    = flag.String("stats", "", "write per-run solver statistics as JSON to this file (\"-\" for stdout)")
		fresh       = flag.Bool("fresh-encode", false, "disable incremental solving sessions (re-encode every budget rung)")
		workers     = flag.Int("workers", 0, "portfolio goroutines inside each compilation (0 = GOMAXPROCS, 1 = sequential compiler)")
		noExchange  = flag.Bool("no-exchange", false, "disable the portfolio's learnt-clause exchange (A/B measurement)")
		memoDir     = flag.String("memo-dir", "", "persist the cross-compile memo under this directory (warm-starts later runs)")
		noMemo      = flag.Bool("no-memo", false, "disable the cross-compile memo even when -memo-dir is set")
		alias       = flag.Bool("alias", false, "run Table 3 over the field/state-renamed alias corpus (memo hit-rate measurement)")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
		memProfile  = flag.String("memprofile", "", "write a heap profile taken at exit to this file")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	cfg := tables.Config{
		OptTimeout:  *optTimeout,
		OrigTimeout: *origTimeout,
		RunOrig:     *runOrig,
		Filter:      *filter,
		FreshEncode: *fresh,
		Workers:     *workers,
		NoExchange:  *noExchange,
	}
	var runs []tables.RunStats
	if *statsOut != "" {
		cfg.StatsSink = func(r tables.RunStats) { runs = append(runs, r) }
	}
	if *memoDir != "" && !*noMemo {
		mc, err := memo.Open(*memoDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		cfg.Memo = mc
	}

	table3 := tables.Table3
	if *alias {
		table3 = tables.Table3Alias
	}

	did := false
	if *all || *table == 3 || *summary {
		did = true
		if *alias {
			fmt.Println("== Table 3 (alias corpus): ParserHawk vs Tofino and IPU compilers ==")
		} else {
			fmt.Println("== Table 3: ParserHawk vs Tofino and IPU compilers ==")
		}
		rows := table3(cfg)
		fmt.Print(tables.FormatTable3(rows, cfg.RunOrig))
		if *summary || *all {
			fmt.Println("\n== §7 summary statistics ==")
			fmt.Print(tables.FormatSummary(tables.Summarize(rows)))
		}
		fmt.Println()
	}
	if *all || *table == 3 || *summary {
		fmt.Println("== Table 3 appendix: wire-scale benchmarks ==")
		rows := tables.Table3Wire(cfg)
		fmt.Print(tables.FormatTable3(rows, cfg.RunOrig))
		fmt.Println()
	}
	if *all || *table == 4 {
		did = true
		fmt.Println("== Table 4: ParserHawk vs DPParserGen (motivating examples) ==")
		fmt.Print(tables.FormatTable4(tables.Table4(cfg.OptTimeout)))
		fmt.Println()
	}
	if *all || *table == 5 {
		did = true
		fmt.Println("== Table 5: optimization ablation (Opt4, Opt5) ==")
		fmt.Print(tables.FormatTable5(tables.Table5(cfg.OptTimeout)))
		fmt.Println()
	}
	if *all || *figure == 4 {
		did = true
		r, err := tables.Figure4(cfg.OptTimeout)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Print(tables.FormatFigure4(r))
		fmt.Println()
	}
	if *all || *figure == 5 {
		did = true
		r, err := tables.Figure5(cfg.OptTimeout)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Print(tables.FormatFigure5(r))
		fmt.Println()
	}
	if *all || *retarget {
		did = true
		runRetarget(*optTimeout)
	}
	if !did {
		flag.Usage()
		os.Exit(2)
	}
	if *statsOut != "" {
		data, err := tables.EncodeRunStats(runs)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *statsOut == "-" {
			os.Stdout.Write(data)
		} else if err := os.WriteFile(*statsOut, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

// runRetarget compiles one benchmark for every target from the identical
// specification — the §7.3 claim that switching devices changes only the
// hardware profile.
func runRetarget(timeout time.Duration) {
	fmt.Println("== §7.3 retargetability: one spec, three devices ==")
	b, _ := benchdata.ByName("Sai V1")
	opts := parserhawk.DefaultOptions()
	opts.Timeout = timeout
	for _, target := range []parserhawk.Profile{tables.TofinoScaled(), tables.IPUScaled(), tables.FPGAScaled()} {
		res, err := parserhawk.Compile(b.Spec, target, opts)
		if err != nil {
			fmt.Printf("  %-14s FAILED: %v\n", target.Name, err)
			continue
		}
		fmt.Printf("  %-14s (%s): %d entries, %d stages — same spec, different constraints\n",
			target.Name, target.Arch, res.Resources.Entries, res.Resources.Stages)
	}
	fmt.Println("  (the synthesis core is shared; only the hardware profile differs)")
}
