// Command parserhawk compiles a P4 parser specification into a TCAM
// parser program for a target device.
//
// Usage:
//
//	parserhawk -target tofino  parser.p4
//	parserhawk -target ipu     parser.p4
//	parserhawk -target custom -key 4 -lookahead 8 -extract 16 parser.p4
//	parserhawk -targets tofino,ipu,fpga parser.p4 # one spec, every target
//	parserhawk -naive -timeout 30s parser.p4      # the paper's Orig mode
//	parserhawk -lint parser.p4                    # static analysis only
//	parserhawk -lint -json parser.p4              # diagnostics as JSON
//
// The compiled TCAM entries, resource usage, and synthesis statistics are
// printed to stdout. With -lint no synthesis runs: the SpecLint
// diagnostics (codes PH001–PH007) are printed instead, and the exit
// status is 1 exactly when an error-severity diagnostic is present.
//
// -targets fans the one spec across several device profiles concurrently
// (sharing the -workers portfolio budget) and prints a per-target
// comparison table; every successful compile is re-certified with the
// independent witness checker before its row says so. With -expect FILE
// (lines of "target verdict", # comments allowed) the exit status is 1
// when any target's verdict deviates from the file or an expected-ok
// target fails certification — the CI smoke gate.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"time"

	"parserhawk"
	"parserhawk/internal/hw"
	"parserhawk/internal/memo"
	"parserhawk/internal/tables"
)

func main() {
	var (
		target     = flag.String("target", "tofino", "target device: tofino, ipu, fpga, their -scaled variants, or custom")
		targets    = flag.String("targets", "", "comma-separated target list for a multi-target compile (e.g. tofino,ipu,fpga); prints a per-target comparison table")
		expectFile = flag.String("expect", "", "-targets: expectations file (lines of \"target verdict\"); exit 1 on any deviation or certification failure")
		key        = flag.Int("key", 8, "custom target: transition-key width limit (bits)")
		lookahead  = flag.Int("lookahead", 16, "custom target: lookahead window (bits)")
		extract    = flag.Int("extract", 64, "custom target: per-entry extraction limit (bits)")
		timeout    = flag.Duration("timeout", 5*time.Minute, "compilation time budget")
		naive      = flag.Bool("naive", false, "disable all synthesis optimizations (the paper's Orig mode)")
		maxIter    = flag.Int("unroll", 0, "loop unroll depth for pipelined targets (0 = default)")
		verify     = flag.Bool("verify", true, "run the spec-vs-implementation equivalence check")
		quiet      = flag.Bool("q", false, "print only the TCAM program")
		emitJSON   = flag.Bool("json", false, "emit the compiled program as deployment JSON")
		stats      = flag.Bool("stats", false, "emit solver-level synthesis statistics as JSON")
		emitP4     = flag.Bool("emit-p4", false, "print the normalized P4 view of the specification and exit")
		lintOnly   = flag.Bool("lint", false, "run SpecLint static analysis and exit (1 on error-severity findings)")
		dimacsDir  = flag.String("dimacs", "", "directory to write the compile's hardest SAT query as DIMACS CNF")
		certOut    = flag.String("cert", "", "write a compilation certificate (bisimulation witness, plus the -proof bundle when enabled) to this file")
		proofOut   = flag.String("proof", "", "enable DRAT proof logging and write the hardest UNSAT query's proof to this file (its CNF lands alongside as <file>.cnf)")
		fresh      = flag.Bool("fresh-encode", false, "disable incremental solving sessions (re-encode every budget rung)")
		workers    = flag.Int("workers", 0, "portfolio goroutines for skeleton ladders and refuter probes (0 = GOMAXPROCS, 1 = sequential)")
		noExchange = flag.Bool("no-exchange", false, "disable the portfolio's learnt-clause exchange between ladders and probes")
		memoDir    = flag.String("memo-dir", "", "persist the cross-compile memo under this directory (warm-starts later compiles)")
		noMemo     = flag.Bool("no-memo", false, "disable the cross-compile memo even when -memo-dir is set")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the compilation to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile taken at exit to this file")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: parserhawk [flags] parser.p4")
		flag.Usage()
		os.Exit(2)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	// Targets resolve through the same registry the hawkd service uses
	// (tables.ProfileByName), so every profile name the service accepts
	// the CLI accepts too — the service-identity CI gate depends on it.
	var profile parserhawk.Profile
	if *target == "custom" {
		profile = parserhawk.Custom(*key, *lookahead, *extract)
	} else {
		p, ok := tables.ProfileByName(*target)
		if !ok {
			fmt.Fprintf(os.Stderr, "parserhawk: unknown target %q\n", *target)
			os.Exit(2)
		}
		profile = p
	}

	opts := parserhawk.DefaultOptions()
	if *naive {
		opts = parserhawk.NaiveOptions()
	}
	opts.Timeout = *timeout
	opts.MaxIterations = *maxIter
	opts.FreshEncode = *fresh
	opts.Workers = *workers
	opts.NoExchange = *noExchange

	// -dimacs / -proof: keep the most-conflicted query any budget rung
	// reports and write it out after compilation — even a failed one, since
	// the hardest query of a timeout is exactly what one wants to replay
	// offline. Both flags select through the same hardestQuery sink so the
	// dumped CNF and the dumped proof always describe the same solver calls.
	var hardest hardestQuery
	if *dimacsDir != "" || *proofOut != "" {
		opts.QuerySink = hardest.consider
	}
	if *certOut != "" {
		opts.EmitCertificate = true
	}
	if *proofOut != "" {
		opts.LogProofs = true
	}

	spec, err := parserhawk.ParseSpecFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *targets != "" {
		os.Exit(runTargets(spec, *targets, *expectFile, opts))
	}

	if *lintOnly {
		runLint(spec, profile, *emitJSON)
		return
	}

	if *emitP4 {
		out, err := parserhawk.PrintSpec(spec)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Print(out)
		return
	}

	start := time.Now()
	var res *parserhawk.Result
	if *memoDir != "" && !*noMemo {
		mc, merr := memo.Open(*memoDir)
		if merr != nil {
			fmt.Fprintln(os.Stderr, merr)
			os.Exit(1)
		}
		res, err = mc.CompileContext(context.Background(), spec, profile, opts)
	} else {
		res, err = parserhawk.Compile(spec, profile, opts)
	}
	if *dimacsDir != "" {
		if werr := hardest.write(*dimacsDir, spec.Name); werr != nil {
			fmt.Fprintln(os.Stderr, werr)
			if err == nil {
				os.Exit(1)
			}
		}
	}
	if *proofOut != "" {
		if werr := hardest.writeProof(*proofOut); werr != nil {
			fmt.Fprintln(os.Stderr, werr)
			if err == nil {
				os.Exit(1)
			}
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "parserhawk: compilation failed: %v\n", err)
		os.Exit(1)
	}
	if *certOut != "" {
		if res.Certificate == nil {
			fmt.Fprintln(os.Stderr, "parserhawk: -cert: compile produced no certificate")
			os.Exit(1)
		}
		data, cerr := res.Certificate.Encode()
		if cerr == nil {
			cerr = os.WriteFile(*certOut, data, 0o644)
		}
		if cerr != nil {
			fmt.Fprintf(os.Stderr, "parserhawk: -cert: %v\n", cerr)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "parserhawk: certificate written to %s (check it with: hawkcheck %s %s)\n",
			*certOut, flag.Arg(0), *certOut)
	}

	if *emitJSON {
		data, err := parserhawk.EncodeProgramJSON(res.Program)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println(string(data))
	} else {
		fmt.Print(res.Program)
	}
	emitStats := func() {
		data, err := json.MarshalIndent(res.Stats, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("\n%s\n", data)
	}
	if *quiet {
		if *stats {
			emitStats()
		}
		return
	}
	fmt.Printf("\ntarget:            %s (%s)\n", profile.Name, profile.Arch)
	fmt.Printf("TCAM entries:      %d\n", res.Resources.Entries)
	fmt.Printf("parser stages:     %d\n", res.Resources.Stages)
	fmt.Printf("max key width:     %d bits\n", res.Resources.MaxKeyWidth)
	fmt.Printf("search space:      %d bits (naive encoding)\n", res.Stats.SearchSpaceBits)
	fmt.Printf("CEGIS iterations:  %d over %d examples\n", res.Stats.CEGISIterations, res.Stats.TestCases)
	fmt.Printf("solver effort:     %d solves, %d decisions, %d conflicts, %d propagations\n",
		res.Stats.Solver.Solves, res.Stats.Solver.Decisions, res.Stats.Solver.Conflicts, res.Stats.Solver.Propagations)
	fmt.Printf("compile time:      %v\n", time.Since(start).Round(time.Millisecond))

	if *stats {
		emitStats()
	}

	if *verify {
		rep := parserhawk.Verify(spec, res.Program, 0)
		if !rep.OK() {
			fmt.Fprintf(os.Stderr, "verification FAILED: %s\n", rep)
			os.Exit(1)
		}
		fmt.Printf("verification:      %s\n", rep)
	}
}

// runTargets is the -targets mode: resolve every requested profile
// through the shared registry, fan the spec across them, print the
// comparison table, and — when an expectations file is given — gate on
// it. Unknown names are a usage error that lists the registry, so typos
// fail loudly instead of silently compiling a subset.
func runTargets(spec *parserhawk.Spec, list, expectPath string, opts parserhawk.Options) int {
	var profiles []parserhawk.Profile
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		p, ok := tables.ProfileByName(name)
		if !ok {
			fmt.Fprintf(os.Stderr, "parserhawk: -targets: unknown target %q (known: %s)\n",
				name, strings.Join(hw.Names(), ", "))
			return 2
		}
		profiles = append(profiles, p)
	}
	if len(profiles) == 0 {
		fmt.Fprintln(os.Stderr, "parserhawk: -targets: no targets given")
		return 2
	}
	runs := tables.CompileTargets(spec, profiles, opts)
	fmt.Print(tables.FormatTargets(runs))
	if expectPath == "" {
		return 0
	}
	want, err := readExpectations(expectPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "parserhawk: -expect: %v\n", err)
		return 2
	}
	failures := 0
	for _, r := range runs {
		exp, ok := want[r.Target]
		switch {
		case !ok:
			fmt.Fprintf(os.Stderr, "parserhawk: -expect: no expectation for target %q\n", r.Target)
			failures++
		case r.Verdict != exp:
			fmt.Fprintf(os.Stderr, "parserhawk: -expect: %s: verdict %q, expected %q\n", r.Target, r.Verdict, exp)
			failures++
		case r.Verdict == "ok" && !r.Certified:
			fmt.Fprintf(os.Stderr, "parserhawk: -expect: %s: compiled but failed certification: %s\n", r.Target, r.CertErr)
			failures++
		}
	}
	if failures > 0 {
		return 1
	}
	return 0
}

// readExpectations parses a -expect file: one "target verdict" pair per
// line, blank lines and #-comments ignored.
func readExpectations(path string) (map[string]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	want := make(map[string]string)
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("%s:%d: want \"target verdict\", got %q", path, i+1, line)
		}
		want[fields[0]] = fields[1]
	}
	return want, nil
}

// hardestQuery keeps the most-conflicted QueryDump seen so far — overall
// for -dimacs, and among proof-bearing UNSAT dumps for -proof, so both
// flags select from the same stream of solver calls. The sink may be
// called concurrently from racing skeleton attempts, hence the mutex.
type hardestQuery struct {
	mu     sync.Mutex
	best   *parserhawk.QueryDump
	proved *parserhawk.QueryDump
}

func (h *hardestQuery) consider(q parserhawk.QueryDump) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.best == nil || q.Conflicts > h.best.Conflicts {
		h.best = &q
	}
	if len(q.Proof) > 0 && (h.proved == nil || q.Conflicts > h.proved.Conflicts) {
		h.proved = &q
	}
}

// write saves the hardest query as <dir>/<spec>.hardest.cnf: a DIMACS
// comment header identifying the query, then the instance with that
// solve's assumptions as unit clauses.
func (h *hardestQuery) write(dir, spec string) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.best == nil {
		return fmt.Errorf("parserhawk: -dimacs: no SAT query was captured")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("parserhawk: -dimacs: %w", err)
	}
	q := h.best
	var b strings.Builder
	fmt.Fprintf(&b, "c parserhawk hardest query\n")
	fmt.Fprintf(&b, "c spec=%s skeleton=%s budget=%d examples=%d\n", q.Spec, q.Skeleton, q.Budget, q.Examples)
	fmt.Fprintf(&b, "c status=%s conflicts=%d\n", q.Status, q.Conflicts)
	b.Write(q.DIMACS)
	name := filepath.Join(dir, sanitize(spec)+".hardest.cnf")
	if err := os.WriteFile(name, []byte(b.String()), 0o644); err != nil {
		return fmt.Errorf("parserhawk: -dimacs: %w", err)
	}
	fmt.Fprintf(os.Stderr, "parserhawk: hardest query (%d conflicts, %s, budget %d) written to %s\n",
		q.Conflicts, q.Status, q.Budget, name)
	return nil
}

// writeProof saves the hardest proof-bearing query's DRAT log to path and
// the exact CNF it refutes to path+".cnf", a checkable pair for any DRAT
// checker (hawkcheck validates the same pair embedded in a certificate).
func (h *hardestQuery) writeProof(path string) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.proved == nil {
		return fmt.Errorf("parserhawk: -proof: no UNSAT query with a proof was captured")
	}
	q := h.proved
	if err := os.WriteFile(path, q.Proof, 0o644); err != nil {
		return fmt.Errorf("parserhawk: -proof: %w", err)
	}
	if err := os.WriteFile(path+".cnf", q.DIMACS, 0o644); err != nil {
		return fmt.Errorf("parserhawk: -proof: %w", err)
	}
	fmt.Fprintf(os.Stderr, "parserhawk: DRAT proof (%d conflicts, budget %d) written to %s (CNF: %s.cnf)\n",
		q.Conflicts, q.Budget, path, path)
	return nil
}

// sanitize maps a spec name onto a safe file stem.
func sanitize(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_', r == '.':
			return r
		default:
			return '_'
		}
	}, name)
}

// runLint prints the SpecLint report for one spec — one line per
// diagnostic plus a severity summary, or a JSON array with -json — and
// exits 1 exactly when an error-severity diagnostic is present.
func runLint(spec *parserhawk.Spec, profile parserhawk.Profile, asJSON bool) {
	diags := parserhawk.LintFor(spec, profile)
	hasErrors := false
	for _, d := range diags {
		if d.Severity == parserhawk.SeverityError {
			hasErrors = true
		}
	}
	if asJSON {
		if diags == nil {
			diags = []parserhawk.Diag{} // emit [], not null
		}
		data, err := json.MarshalIndent(diags, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println(string(data))
	} else {
		for _, d := range diags {
			fmt.Printf("%s: %s\n", spec.Name, d)
		}
		errs, warns, infos := 0, 0, 0
		for _, d := range diags {
			switch d.Severity {
			case parserhawk.SeverityError:
				errs++
			case parserhawk.SeverityWarning:
				warns++
			default:
				infos++
			}
		}
		fmt.Printf("%s: %d error(s), %d warning(s), %d note(s)\n", spec.Name, errs, warns, infos)
	}
	if hasErrors {
		os.Exit(1)
	}
}
