// Command hawkab compares two hawkbench -stats runs of the same benchmark
// slice: one with incremental solving sessions (the default) and one with
// -fresh-encode. It is the CI gate for the incremental architecture:
//
//	hawkbench -table 3 -filter Parse -stats incr.json
//	hawkbench -table 3 -filter Parse -stats fresh.json -fresh-encode
//	hawkab incr.json fresh.json
//
// hawkab exits nonzero when the incremental mode changed any compilation
// outcome — a different OK/failure verdict or a different entry or stage
// count on any benchmark — or when it slowed the slice's total wall time
// beyond the tolerance. It always reports how many CNF clauses and
// solver-construction work the sessions saved.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"parserhawk/internal/tables"
)

func main() {
	var (
		maxSlow = flag.Float64("max-slowdown", 1.25, "fail when incremental total seconds exceed fresh total times this factor")
		slack   = flag.Float64("slack", 2.0, "absolute seconds of slowdown always tolerated (absorbs timer noise on fast slices)")
		minCut  = flag.Float64("min-clause-reduction", 0, "fail when incremental mode saves fewer than this percentage of CNF clauses (0 disables the gate)")
	)
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: hawkab [flags] incremental.json fresh.json")
		flag.Usage()
		os.Exit(2)
	}

	incr, err := load(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	fresh, err := load(flag.Arg(1))
	if err != nil {
		fatal(err)
	}
	for _, r := range incr {
		if r.FreshEncode {
			fatalf("hawkab: %s: first file contains fresh-encode runs; argument order is incremental.json fresh.json", flag.Arg(0))
		}
	}
	for _, r := range fresh {
		if !r.FreshEncode {
			fatalf("hawkab: %s: second file contains incremental runs; argument order is incremental.json fresh.json", flag.Arg(1))
		}
	}

	im, fm := index(incr), index(fresh)
	var keys []string
	for k := range im {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	if len(im) != len(fm) {
		fatalf("hawkab: run sets differ: %d incremental vs %d fresh-encode records", len(im), len(fm))
	}

	bad := 0
	var incrSec, freshSec float64
	var incrClauses, freshClauses, retained, consHits int64
	for _, k := range keys {
		a, b := im[k], fm[k]
		if b == nil {
			fmt.Fprintf(os.Stderr, "hawkab: %s: present only in the incremental run\n", k)
			bad++
			continue
		}
		if a.OK != b.OK {
			fmt.Fprintf(os.Stderr, "hawkab: %s: verdict changed: incremental ok=%v, fresh ok=%v (%s / %s)\n",
				k, a.OK, b.OK, a.Error, b.Error)
			bad++
		} else if a.OK && (a.Entries != b.Entries || a.Stages != b.Stages) {
			fmt.Fprintf(os.Stderr, "hawkab: %s: result changed: incremental %d entries/%d stages, fresh %d entries/%d stages\n",
				k, a.Entries, a.Stages, b.Entries, b.Stages)
			bad++
		}
		incrSec += a.Seconds
		freshSec += b.Seconds
		incrClauses += a.Stats.Solver.Clauses
		freshClauses += b.Stats.Solver.Clauses
		retained += a.Stats.Solver.RetainedClauses
		consHits += a.Stats.Solver.ConsHits
	}

	fmt.Printf("runs compared:     %d\n", len(keys))
	fmt.Printf("total wall time:   incremental %.2fs, fresh-encode %.2fs (%.2fx)\n",
		incrSec, freshSec, ratio(incrSec, freshSec))
	fmt.Printf("CNF clauses:       incremental %d, fresh-encode %d (%.1f%% fewer)\n",
		incrClauses, freshClauses, pctLess(incrClauses, freshClauses))
	fmt.Printf("learned retained:  %d clauses carried across solves\n", retained)
	fmt.Printf("cons-cache hits:   %d gates deduplicated\n", consHits)

	if bad > 0 {
		fatalf("hawkab: FAIL: %d run(s) changed outcome under incremental solving", bad)
	}
	if incrSec > freshSec**maxSlow+*slack {
		fatalf("hawkab: FAIL: incremental mode is %.2fx slower than fresh-encode (limit %.2fx + %.1fs slack)",
			ratio(incrSec, freshSec), *maxSlow, *slack)
	}
	if cut := pctLess(incrClauses, freshClauses); *minCut > 0 && cut < *minCut {
		fatalf("hawkab: FAIL: incremental mode saved only %.1f%% of CNF clauses (gate: %.1f%%)", cut, *minCut)
	}
	fmt.Println("hawkab: OK: identical outcomes, within the time budget")
}

func load(path string) ([]tables.RunStats, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("hawkab: %w", err)
	}
	runs, err := tables.DecodeRunStats(data)
	if err != nil {
		return nil, fmt.Errorf("hawkab: %s: %w", path, err)
	}
	if len(runs) == 0 {
		return nil, fmt.Errorf("hawkab: %s: no runs recorded", path)
	}
	return runs, nil
}

func index(runs []tables.RunStats) map[string]*tables.RunStats {
	m := make(map[string]*tables.RunStats, len(runs))
	for i := range runs {
		r := &runs[i]
		m[fmt.Sprintf("%s/%s/%s", r.Program, r.Target, r.Mode)] = r
	}
	return m
}

func ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

func pctLess(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(b-a) / float64(b)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
