// Command hawkab compares two hawkbench -stats runs of the same benchmark
// slice. Its default mode is the CI gate for the incremental architecture
// — one file with incremental solving sessions (the default) and one with
// -fresh-encode:
//
//	hawkbench -table 3 -filter Parse -stats incr.json
//	hawkbench -table 3 -filter Parse -stats fresh.json -fresh-encode
//	hawkab incr.json fresh.json
//
// With -same-mode it is a before/after harness instead: both files come
// from the same encode mode (typically two builds of the compiler), and
// the comparison answers "did this change alter any outcome, and what did
// it do to wall time and solver effort":
//
//	hawkab -same-mode before.json after.json
//
// hawkab exits nonzero when the two runs disagree on any compilation
// outcome — a different OK/failure verdict or a different entry or stage
// count on any benchmark — or when the first file's total wall time
// exceeds the second's beyond the tolerance. The verdict table reports
// the solver-effort movement (conflicts, propagations, learned clauses)
// alongside the wall-time and CNF-clause comparisons.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"parserhawk/internal/tables"
)

func main() {
	var (
		maxSlow  = flag.Float64("max-slowdown", 1.25, "fail when the first file's total seconds exceed the second's times this factor")
		slack    = flag.Float64("slack", 2.0, "absolute seconds of slowdown always tolerated (absorbs timer noise on fast slices)")
		minCut   = flag.Float64("min-clause-reduction", 0, "fail when the first run saves fewer than this percentage of CNF clauses (0 disables the gate)")
		sameMode = flag.Bool("same-mode", false, "compare two runs of the same encode mode (before/after a compiler change) instead of incremental vs fresh-encode")
	)
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: hawkab [flags] incremental.json fresh.json\n       hawkab -same-mode [flags] before.json after.json")
		flag.Usage()
		os.Exit(2)
	}

	aRuns, err := load(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	bRuns, err := load(flag.Arg(1))
	if err != nil {
		fatal(err)
	}
	aLabel, bLabel := "incremental", "fresh-encode"
	if *sameMode {
		aLabel, bLabel = "before", "after"
		for _, r := range bRuns {
			if r.FreshEncode != aRuns[0].FreshEncode {
				fatalf("hawkab: -same-mode: the two files mix encode modes; rerun both with the same -fresh-encode setting")
			}
		}
	} else {
		for _, r := range aRuns {
			if r.FreshEncode {
				fatalf("hawkab: %s: first file contains fresh-encode runs; argument order is incremental.json fresh.json", flag.Arg(0))
			}
		}
		for _, r := range bRuns {
			if !r.FreshEncode {
				fatalf("hawkab: %s: second file contains incremental runs; argument order is incremental.json fresh.json", flag.Arg(1))
			}
		}
	}

	am, bm := index(aRuns), index(bRuns)
	var keys []string
	for k := range am {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	if len(am) != len(bm) {
		fatalf("hawkab: run sets differ: %d %s vs %d %s records", len(am), aLabel, len(bm), bLabel)
	}

	bad := 0
	var aTot, bTot totals
	for _, k := range keys {
		a, b := am[k], bm[k]
		if b == nil {
			fmt.Fprintf(os.Stderr, "hawkab: %s: present only in the %s run\n", k, aLabel)
			bad++
			continue
		}
		if a.OK != b.OK {
			fmt.Fprintf(os.Stderr, "hawkab: %s: verdict changed: %s ok=%v, %s ok=%v (%s / %s)\n",
				k, aLabel, a.OK, bLabel, b.OK, a.Error, b.Error)
			bad++
		} else if a.OK && (a.Entries != b.Entries || a.Stages != b.Stages) {
			fmt.Fprintf(os.Stderr, "hawkab: %s: result changed: %s %d entries/%d stages, %s %d entries/%d stages\n",
				k, aLabel, a.Entries, a.Stages, bLabel, b.Entries, b.Stages)
			bad++
		}
		aTot.add(a)
		bTot.add(b)
	}

	// The verdict table: outcome identity plus the wall-time, CNF-size,
	// and solver-effort movement between the two runs.
	fmt.Printf("runs compared:     %d\n", len(keys))
	fmt.Printf("%-18s %14s %14s %8s\n", "metric", aLabel, bLabel, "ratio")
	row := func(name string, a, b int64) {
		fmt.Printf("%-18s %14d %14d %7.2fx\n", name, a, b, ratio(float64(a), float64(b)))
	}
	fmt.Printf("%-18s %14.2f %14.2f %7.2fx\n", "wall time (s)", aTot.seconds, bTot.seconds, ratio(aTot.seconds, bTot.seconds))
	row("conflicts", aTot.conflicts, bTot.conflicts)
	row("propagations", aTot.propagations, bTot.propagations)
	row("learned clauses", aTot.learned, bTot.learned)
	row("CNF clauses", aTot.clauses, bTot.clauses)
	fmt.Printf("learned retained:  %d clauses carried across solves (%s run)\n", aTot.retained, aLabel)
	fmt.Printf("cons-cache hits:   %d gates deduplicated (%s run)\n", aTot.consHits, aLabel)

	if bad > 0 {
		fatalf("hawkab: FAIL: %d run(s) changed outcome between %s and %s", bad, aLabel, bLabel)
	}
	if aTot.seconds > bTot.seconds**maxSlow+*slack {
		fatalf("hawkab: FAIL: %s run is %.2fx slower than %s (limit %.2fx + %.1fs slack)",
			aLabel, ratio(aTot.seconds, bTot.seconds), bLabel, *maxSlow, *slack)
	}
	if cut := pctLess(aTot.clauses, bTot.clauses); *minCut > 0 && cut < *minCut {
		fatalf("hawkab: FAIL: %s run saved only %.1f%% of CNF clauses (gate: %.1f%%)", aLabel, cut, *minCut)
	}
	fmt.Println("hawkab: OK: identical outcomes, within the time budget")
}

// totals accumulates one run set's wall time and solver effort.
type totals struct {
	seconds      float64
	conflicts    int64
	propagations int64
	learned      int64
	clauses      int64
	retained     int64
	consHits     int64
}

func (t *totals) add(r *tables.RunStats) {
	t.seconds += r.Seconds
	t.conflicts += r.Stats.Solver.Conflicts
	t.propagations += r.Stats.Solver.Propagations
	t.learned += r.Stats.Solver.LearnedClauses
	t.clauses += r.Stats.Solver.Clauses
	t.retained += r.Stats.Solver.RetainedClauses
	t.consHits += r.Stats.Solver.ConsHits
}

func load(path string) ([]tables.RunStats, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("hawkab: %w", err)
	}
	runs, err := tables.DecodeRunStats(data)
	if err != nil {
		return nil, fmt.Errorf("hawkab: %s: %w", path, err)
	}
	if len(runs) == 0 {
		return nil, fmt.Errorf("hawkab: %s: no runs recorded", path)
	}
	return runs, nil
}

func index(runs []tables.RunStats) map[string]*tables.RunStats {
	m := make(map[string]*tables.RunStats, len(runs))
	for i := range runs {
		r := &runs[i]
		m[fmt.Sprintf("%s/%s/%s", r.Program, r.Target, r.Mode)] = r
	}
	return m
}

func ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

func pctLess(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(b-a) / float64(b)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
