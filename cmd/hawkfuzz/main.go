// Command hawkfuzz is ParserHawk's differential fuzzer: it mutates seed
// parser specifications, compiles every mutant, and cross-checks the spec
// interpretation, the synthesized TCAM program under device semantics, and
// SpecLint's SAT-certified verdicts against each other on random packets.
// Divergences are shrunk to minimal specs and written out as ready-to-commit
// benchdata regression fixtures.
//
// Usage:
//
//	hawkfuzz [flags] [spec.p4 ...]
//
// Seeds come from .p4 files given as arguments and/or the built-in
// benchmark corpus selected with -builtin. The run is deterministic for a
// fixed -seed. Exit status: 0 clean, 1 divergence found, 2 usage or
// infrastructure error.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"parserhawk/internal/benchdata"
	"parserhawk/internal/core"
	"parserhawk/internal/fuzz"
	"parserhawk/internal/hw"
	"parserhawk/internal/p4"
	_ "parserhawk/internal/tables" // registers the *-scaled profiles with hw
)

func main() {
	var (
		seed         = flag.Int64("seed", 1, "campaign seed (fixed seed = deterministic run)")
		mutations    = flag.Int("mutations", 200, "mutants checked per profile")
		edits        = flag.Int("edits", 2, "max edits composed per mutant")
		packets      = flag.Int("packets", 10000, "random packets per checked spec")
		profiles     = flag.String("profiles", "tofino-scaled", "comma-separated target profiles")
		builtin      = flag.String("builtin", "", "add built-in seeds: table3, deep, all")
		timeout      = flag.Duration("timeout", 30*time.Second, "per-compile budget")
		workers      = flag.Int("workers", 1, "portfolio workers per compile")
		out          = flag.String("out", "", "directory for shrunk divergence fixtures")
		shrinkChecks = flag.Int("shrink-checks", 300, "max property re-checks per shrink")
		verbose      = flag.Bool("v", false, "log per-spec progress")
	)
	flag.Parse()

	seeds, err := collectSeeds(flag.Args(), *builtin)
	if err != nil {
		fatal(err)
	}
	if len(seeds) == 0 {
		fatal(fmt.Errorf("no seeds: give .p4 files and/or -builtin table3|deep|all"))
	}

	var profs []hw.Profile
	for _, name := range strings.Split(*profiles, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		p, ok := hw.ByName(name)
		if !ok {
			fatal(fmt.Errorf("unknown profile %q (known: %s)", name, strings.Join(hw.Names(), " ")))
		}
		profs = append(profs, p)
	}
	if len(profs) == 0 {
		fatal(fmt.Errorf("no profiles selected"))
	}

	opts := core.DefaultOptions()
	opts.Timeout = *timeout
	opts.Workers = *workers

	cfg := fuzz.CampaignConfig{
		Config: fuzz.Config{
			Options: opts,
			Packets: *packets,
			Seed:    *seed,
		},
		Profiles:     profs,
		Mutations:    *mutations,
		Edits:        *edits,
		ShrinkChecks: *shrinkChecks,
	}
	if *verbose {
		cfg.Log = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "hawkfuzz: "+format+"\n", args...)
		}
	}

	start := time.Now()
	res, err := fuzz.Run(cfg, seeds)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("hawkfuzz: %d seeds x %d profiles, %d specs checked in %.1fs\n",
		len(seeds), len(profs), res.Checked, time.Since(start).Seconds())
	for _, o := range []fuzz.Outcome{fuzz.OK, fuzz.Diverged, fuzz.SkipLint, fuzz.SkipNoSolution, fuzz.SkipTimeout} {
		if n := res.Outcomes[o]; n > 0 {
			fmt.Printf("  %-18s %d\n", o.String(), n)
		}
	}

	all := append(append([]*fuzz.Divergence(nil), res.SeedDivergences...), res.Divergences...)
	for _, d := range all {
		fmt.Printf("\nDIVERGENCE %s\n", d)
		if *out != "" {
			if err := os.MkdirAll(*out, 0o755); err != nil {
				fatal(err)
			}
			path := filepath.Join(*out, d.FixtureName()+".p4")
			if err := os.WriteFile(path, []byte(d.Fixture()), 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("  shrunk fixture written to %s\n", path)
		}
	}
	if len(res.SeedDivergences) > 0 {
		fmt.Printf("\nFAIL: %d unexplained divergence(s) on the unmutated seed corpus\n", len(res.SeedDivergences))
	}
	if res.Failed() {
		os.Exit(1)
	}
	fmt.Println("no divergences")
}

// collectSeeds builds the corpus from file arguments and the -builtin
// selector. File seeds with loops get the same default iteration bound the
// compiler applies (4); built-ins carry their curated bounds.
func collectSeeds(files []string, builtin string) ([]fuzz.Seed, error) {
	var seeds []fuzz.Seed
	for _, path := range files {
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		spec, err := p4.ParseSpec(string(src))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		s := fuzz.Seed{Name: filepath.Base(path), Spec: spec}
		if spec.HasLoop() {
			s.MaxIterations = 4
		}
		seeds = append(seeds, s)
	}
	addSuite := func(bs []benchdata.Benchmark) {
		for _, b := range bs {
			seeds = append(seeds, fuzz.Seed{Name: b.Name(), Spec: b.Spec, MaxIterations: b.MaxIterations})
		}
	}
	switch builtin {
	case "":
	case "table3", "all":
		addSuite(benchdata.All()) // includes the deep corpus
	case "deep":
		addSuite(benchdata.Deep())
	default:
		return nil, fmt.Errorf("unknown -builtin %q (want table3, deep, or all)", builtin)
	}
	return seeds, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hawkfuzz:", err)
	os.Exit(2)
}
