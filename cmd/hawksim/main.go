// Command hawksim runs packets through a parser specification (and
// optionally its compiled implementation) and prints the parsed fields —
// the interactive counterpart of the §7.1 correctness simulator.
//
// Usage:
//
//	hawksim -spec parser.p4 -hex 0800450000...      # parse wire bytes
//	hawksim -spec parser.p4 -bits 0100_1010          # parse a bit string
//	hawksim -spec parser.p4 -random 20               # 20 random inputs
//	hawksim -spec parser.p4 -compile -target ipu -hex ...   # spec AND impl
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"time"

	"parserhawk"
	"parserhawk/internal/bitstream"
)

func main() {
	var (
		specPath = flag.String("spec", "", "parser specification (.p4)")
		hexIn    = flag.String("hex", "", "packet bytes in hex")
		bitsIn   = flag.String("bits", "", "packet as a bit string (0/1, '_' ignored)")
		random   = flag.Int("random", 0, "parse N random inputs instead")
		seed     = flag.Int64("seed", 1, "random seed")
		compile  = flag.Bool("compile", false, "also compile and compare the implementation")
		target   = flag.String("target", "tofino", "compile target: tofino or ipu")
		timeout  = flag.Duration("timeout", 2*time.Minute, "compile budget")
	)
	flag.Parse()
	if *specPath == "" {
		fmt.Fprintln(os.Stderr, "hawksim: -spec is required")
		os.Exit(2)
	}
	spec, err := parserhawk.ParseSpecFile(*specPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	var prog *parserhawk.Program
	if *compile {
		profile := parserhawk.Tofino()
		if *target == "ipu" {
			profile = parserhawk.IPU()
		}
		opts := parserhawk.DefaultOptions()
		opts.Timeout = *timeout
		res, err := parserhawk.Compile(spec, profile, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hawksim: compile: %v\n", err)
			os.Exit(1)
		}
		prog = res.Program
		fmt.Printf("compiled for %s: %d entries, %d stages\n\n",
			profile.Name, res.Resources.Entries, res.Resources.Stages)
	}

	var inputs []parserhawk.Bits
	switch {
	case *hexIn != "":
		raw, err := hex.DecodeString(strings.ReplaceAll(*hexIn, " ", ""))
		if err != nil {
			fmt.Fprintln(os.Stderr, "hawksim: bad hex:", err)
			os.Exit(1)
		}
		inputs = append(inputs, parserhawk.BitsOf(raw))
	case *bitsIn != "":
		b, err := bitstream.FromString(*bitsIn)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hawksim:", err)
			os.Exit(1)
		}
		inputs = append(inputs, b)
	case *random > 0:
		rng := rand.New(rand.NewSource(*seed))
		n := spec.MaxConsumedBits(0) + spec.LookaheadUse()
		for i := 0; i < *random; i++ {
			inputs = append(inputs, bitstream.Random(rng, n))
		}
	default:
		fmt.Fprintln(os.Stderr, "hawksim: provide -hex, -bits, or -random")
		os.Exit(2)
	}

	mismatches := 0
	for _, in := range inputs {
		res := spec.Run(in, 0)
		outcome := "accept"
		if res.Rejected {
			outcome = "reject"
		}
		fmt.Printf("input  %s\nspec   %s", in, outcome)
		for _, name := range spec.SortedFieldNames() {
			if v, ok := res.Dict[name]; ok {
				fmt.Printf("  %s=%s", name, v)
			}
		}
		fmt.Println()
		if prog != nil {
			impl := prog.Run(in, 0)
			if impl.Same(res) {
				fmt.Println("impl   identical")
			} else {
				mismatches++
				fmt.Printf("impl   MISMATCH: acc=%v dict=%v\n", impl.Accepted, impl.Dict)
			}
		}
		fmt.Println()
	}
	if mismatches > 0 {
		fmt.Fprintf(os.Stderr, "hawksim: %d mismatches\n", mismatches)
		os.Exit(1)
	}
}
