// Command hawkcheck validates ParserHawk compilation certificates
// independently of the compiler that produced them.
//
// Usage:
//
//	hawkcheck parser.p4 parser.cert.json   # check one certificate
//	hawkcheck -table3                      # compile & certify the whole
//	                                       # Table 3 suite, then reject
//	                                       # seeded mutations (the CI gate)
//
// The two-argument form re-derives everything the certificate claims from
// the source specification: the spec hash, the effective (post-lint,
// post-unroll) spec, the bisimulation witness's coverage of the product
// automaton, and — when a proof bundle is present — the DRAT refutation
// of the hardest UNSAT solver query. None of these checks call into the
// synthesizer or its CEGIS verifier; the checker lives in internal/cert
// and trusts only the two IRs.
//
// Exit status: 0 when the certificate is valid, 1 when any check fails,
// 2 on usage or I/O errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"parserhawk"
	"parserhawk/internal/benchdata"
	"parserhawk/internal/cert"
	"parserhawk/internal/hw"
	"parserhawk/internal/tables"
)

func main() {
	var (
		table3  = flag.Bool("table3", false, "compile every Table 3 benchmark on both scaled targets, check each certificate, and reject seeded mutations")
		timeout = flag.Duration("timeout", 2*time.Minute, "-table3: per-compilation time budget")
		seed    = flag.Int64("seed", 7, "-table3: seed for the mutation generator")
		verbose = flag.Bool("v", false, "print every check, not just failures")
	)
	flag.Parse()

	if *table3 {
		os.Exit(runTable3(*timeout, *seed, *verbose))
	}
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: hawkcheck [flags] parser.p4 cert.json\n       hawkcheck -table3")
		flag.Usage()
		os.Exit(2)
	}

	spec, err := parserhawk.ParseSpecFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "hawkcheck: %v\n", err)
		os.Exit(2)
	}
	data, err := os.ReadFile(flag.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "hawkcheck: %v\n", err)
		os.Exit(2)
	}
	c, err := cert.Decode(data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hawkcheck: %v\n", err)
		os.Exit(2)
	}
	profile, ok := tables.ProfileByName(c.Profile)
	if !ok {
		fmt.Fprintf(os.Stderr, "hawkcheck: certificate targets unknown profile %q\n", c.Profile)
		os.Exit(2)
	}
	if err := checkAgainstSpec(spec, profile, c); err != nil {
		fmt.Fprintf(os.Stderr, "hawkcheck: FAILED: %v\n", err)
		os.Exit(1)
	}
	what := "witness"
	if c.Proof != nil {
		what = "witness + DRAT proof"
	}
	fmt.Printf("hawkcheck: OK: %s (%s on %s, %d witness pairs)\n", what, c.Spec, c.Profile, len(c.Witness.Pairs))
}

// checkAgainstSpec runs the full validation of one certificate against
// the source specification it claims to compile: spec identity, arch
// cross-check, effective-spec recomputation, witness/proof self-check, and
// a device re-validation of the program under the profile's own semantics
// (the streaming window/depth rules for fpga targets). The logic lives in
// tables.CheckCertificate so the multi-target harness applies the same
// standard.
func checkAgainstSpec(spec *parserhawk.Spec, profile hw.Profile, c *cert.Certificate) error {
	return tables.CheckCertificate(spec, profile, c)
}

// runTable3 is the certify CI job: every Table 3 benchmark × all three
// scaled targets is compiled with certificates and proof logging on, every
// certificate must check, and every seeded mutation of it must fail.
func runTable3(timeout time.Duration, seed int64, verbose bool) int {
	profiles := []hw.Profile{tables.TofinoScaled(), tables.IPUScaled(), tables.FPGAScaled()}
	checked, withProof, failures := 0, 0, 0
	fail := func(format string, a ...any) {
		failures++
		fmt.Fprintf(os.Stderr, "FAIL "+format+"\n", a...)
	}
	for _, b := range benchdata.All() {
		for _, profile := range profiles {
			name := fmt.Sprintf("%s on %s", b.Name(), profile.Name)
			opts := parserhawk.DefaultOptions()
			opts.Timeout = timeout
			opts.MaxIterations = b.MaxIterations
			opts.EmitCertificate = true
			opts.LogProofs = true
			res, err := parserhawk.Compile(b.Spec, profile, opts)
			if err != nil {
				fail("%s: compile: %v", name, err)
				continue
			}
			c := res.Certificate
			if c == nil {
				fail("%s: no certificate emitted", name)
				continue
			}
			if err := checkAgainstSpec(b.Spec, profile, c); err != nil {
				fail("%s: %v", name, err)
				continue
			}
			checked++
			if c.Proof != nil {
				withProof++
			}
			muts, err := cert.FailingMutations(c, seed)
			if err != nil {
				fail("%s: mutations: %v", name, err)
				continue
			}
			rejected := 0
			for _, m := range muts {
				if m.Cert.SelfCheck() == nil {
					fail("%s: mutation %s passed the checker", name, m.Name)
				} else {
					rejected++
				}
			}
			if verbose {
				fmt.Printf("ok   %s: %d witness pairs, proof=%v, %d/%d mutations rejected\n",
					name, len(c.Witness.Pairs), c.Proof != nil, rejected, len(muts))
			}
		}
	}
	fmt.Printf("hawkcheck -table3: %d certificates checked (%d with DRAT proofs), %d failures\n",
		checked, withProof, failures)
	if failures > 0 {
		return 1
	}
	return 0
}
