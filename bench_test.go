// Benchmarks regenerating the paper's evaluation (§7): one benchmark per
// table and figure. Run with
//
//	go test -bench=. -benchmem
//
// BenchmarkTable3 compiles every §7 benchmark program for both targets
// (the paper's OPT columns); BenchmarkTable3Orig runs the naive encoding
// on a representative subset (the Orig columns — the full naive suite is
// timeout-censored by design, see cmd/hawkbench -orig). BenchmarkTable4
// and BenchmarkFigure4/5 compare against DPParserGen; BenchmarkTable5 is
// the Opt4/Opt5 ablation.
package parserhawk_test

import (
	"testing"
	"time"

	"parserhawk"
	"parserhawk/internal/benchdata"
	"parserhawk/internal/core"
	"parserhawk/internal/dpgen"
	"parserhawk/internal/tables"
	"parserhawk/internal/vendorc"
)

// BenchmarkTable3 measures ParserHawk's optimized compilation time for
// every benchmark/target cell of Table 3.
func BenchmarkTable3(b *testing.B) {
	suite := benchdata.All()
	if testing.Short() {
		// CI smoke mode: one representative family instead of the full
		// 29-program suite.
		var trimmed []benchdata.Benchmark
		for _, bench := range suite {
			if bench.Family == "Parse Ethernet" {
				trimmed = append(trimmed, bench)
			}
		}
		suite = trimmed
	}
	for _, bench := range suite {
		for _, target := range []parserhawk.Profile{tables.TofinoScaled(), tables.IPUScaled()} {
			bench, target := bench, target
			b.Run(bench.Name()+"/"+target.Name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					opts := core.DefaultOptions()
					opts.Timeout = 2 * time.Minute
					opts.MaxIterations = bench.MaxIterations
					if _, err := core.Compile(bench.Spec, target, opts); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkTable3Vendor measures the vendor-compiler models on the same
// suite (they are rule-based and fast; the comparison is resource usage,
// reported by cmd/hawkbench).
func BenchmarkTable3Vendor(b *testing.B) {
	tof, ipu := tables.TofinoScaled(), tables.IPUScaled()
	b.Run("tofino", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, bench := range benchdata.All() {
				_, _ = vendorc.CompileTofino(bench.Spec, tof)
			}
		}
	})
	b.Run("ipu", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, bench := range benchdata.All() {
				_, _ = vendorc.CompileIPU(bench.Spec, ipu)
			}
		}
	})
}

// BenchmarkTable3Orig runs the naive ("Orig") encoding on the benchmarks
// small enough to finish: the OPT/Orig ratio on these cells is the
// uncensored part of the paper's speedup distribution.
func BenchmarkTable3Orig(b *testing.B) {
	if testing.Short() {
		b.Skip("naive mode is minutes-slow by design; skipped in -short")
	}
	for _, name := range []string{
		"Parse Ethernet",
		"Parse icmp",
		"Multi-key (same pkt field)",
	} {
		bench, ok := benchdata.ByName(name)
		if !ok {
			b.Fatalf("missing %s", name)
		}
		b.Run(name+"/tofino", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opts := core.NaiveOptions()
				opts.Timeout = 5 * time.Minute
				opts.MaxIterations = bench.MaxIterations
				if _, err := core.Compile(bench.Spec, tables.TofinoScaled(), opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable4 measures the motivating-example comparison against
// DPParserGen under parameterized hardware.
func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := tables.Table4(2 * time.Minute)
		for _, r := range rows {
			if r.PHErr != "" || r.DPErr != "" {
				b.Fatalf("%s: %s %s", r.Name, r.PHErr, r.DPErr)
			}
		}
	}
}

// BenchmarkTable5 measures the Opt4/Opt5 ablation configurations on one
// representative benchmark per configuration (full sweep:
// cmd/hawkbench -table 5).
func BenchmarkTable5(b *testing.B) {
	bench, _ := benchdata.ByName("Sai V1")
	cases := []struct {
		name       string
		opt5, opt4 bool
	}{
		{"OtherOPT", false, false},
		{"PlusOPT5", true, false},
		{"PlusOPT4and5", true, true},
	}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opts := core.DefaultOptions()
				opts.Timeout = 2 * time.Minute
				opts.Opt4ConstantSynthesis = c.opt4
				opts.Opt5KeyGrouping = c.opt5
				if _, err := core.Compile(bench.Spec, tables.TofinoScaled(), opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFigure4 regenerates the §3.2.1 motivating example (devices A
// and B, both compilers).
func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := tables.Figure4(2 * time.Minute); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure5 regenerates the §3.2.2 written-style example.
func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := tables.Figure5(2 * time.Minute); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRacingCancel measures the tentpole of the cancellable engine on
// a multi-skeleton compilation: the Large-tran-key parser's 16-bit key
// exceeds the scaled Tofino's 12-bit key limit, so the portfolio races two
// key-split skeletons (the two chunk-check orders of Figure 4), and the
// cheaper order's solution reaches the portfolio entry lower bound.
// "early-cancel" is the default engine — reaching the bound cancels the
// sibling skeleton's in-flight solves; "exhaustive" disables early
// termination so every skeleton runs to completion, which is what the
// engine did before cancellation was threaded into the solver. The
// wall-clock gap between the two sub-benchmarks (and the solve counts in
// the log) is the work cancellation saves.
func BenchmarkRacingCancel(b *testing.B) {
	bench, ok := benchdata.ByName("Large tran key")
	if !ok {
		b.Fatal("missing Large tran key")
	}
	for _, mode := range []struct {
		name    string
		exhaust bool
	}{
		{"early-cancel", false},
		{"exhaustive", true},
	} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opts := core.DefaultOptions()
				opts.Workers = 4
				opts.ExhaustPortfolio = mode.exhaust
				opts.Timeout = 2 * time.Minute
				opts.MaxIterations = bench.MaxIterations
				res, err := core.Compile(bench.Spec, tables.TofinoScaled(), opts)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.Logf("%s: %d entries, %d skeletons, %d budgets, %d solves, %d conflicts",
						mode.name, res.Resources.Entries, res.Stats.SkeletonsTried,
						res.Stats.BudgetsTried, res.Stats.Solver.Solves, res.Stats.Solver.Conflicts)
				}
			}
		})
	}
}

// BenchmarkDPParserGen isolates the baseline generator's own speed.
func BenchmarkDPParserGen(b *testing.B) {
	bench, _ := benchdata.ByName("Parse icmp")
	profile := parserhawk.Custom(12, 24, 64)
	for i := 0; i < b.N; i++ {
		if _, err := dpgen.Compile(bench.Spec, profile); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVerifier measures the §7.1 equivalence check on a compiled
// benchmark.
func BenchmarkVerifier(b *testing.B) {
	bench, _ := benchdata.ByName("Sai V1")
	res, err := core.Compile(bench.Spec, tables.TofinoScaled(), core.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rep := parserhawk.Verify(bench.Spec, res.Program, 4096); !rep.OK() {
			b.Fatal(rep)
		}
	}
}

// BenchmarkWireScaleCompile compiles the real-width Ethernet/IPv4/TCP
// parser — the quickstart workload.
func BenchmarkWireScaleCompile(b *testing.B) {
	spec, err := parserhawk.ParseSpec(wireSource)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := parserhawk.Compile(spec, parserhawk.Tofino(), parserhawk.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

const wireSource = `
header ethernet { bit<48> dst; bit<48> src; bit<16> etherType; }
header ipv4 { bit<4> version; bit<4> ihl; bit<8> tos; bit<16> totalLen;
              bit<16> id; bit<16> fragOff; bit<8> ttl; bit<8> protocol;
              bit<16> checksum; bit<32> src; bit<32> dst; }
header tcp { bit<16> srcPort; bit<16> dstPort; }
parser Wire {
    state start {
        extract(ethernet);
        transition select(ethernet.etherType) {
            0x0800  : parse_ipv4;
            default : accept;
        }
    }
    state parse_ipv4 {
        extract(ipv4);
        transition select(ipv4.protocol) {
            6       : parse_tcp;
            default : accept;
        }
    }
    state parse_tcp { extract(tcp); transition accept; }
}
`
