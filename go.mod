module parserhawk

go 1.22
